package experiments

import (
	"fmt"

	"clustersim/internal/apps/ocean"
	"clustersim/internal/core"
)

// Fig2Apps are the applications of Figure 2, in the paper's panel order.
var Fig2Apps = []string{"lu", "fft", "ocean", "radix", "raytrace", "volrend", "barnes", "fmm", "mp3d"}

// Fig2Data produces the Figure 2 bars: every application with infinite
// caches across cluster sizes 1, 2, 4 and 8, normalized per application
// to the 1-processor-cluster time.
func (s *Suite) Fig2Data() ([]Bar, error) {
	var out []Bar
	for _, app := range Fig2Apps {
		bars, err := s.barsFor(app, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, bars...)
	}
	return out, nil
}

// Fig2 prints Figure 2.
func Fig2(opt Options) error { return NewSuite(opt).PrintFig2() }

// PrintFig2 prints Figure 2 using the suite's memoized runs.
func (s *Suite) PrintFig2() error {
	bars, err := s.Fig2Data()
	if err != nil {
		return err
	}
	w := s.Opt.out()
	fmt.Fprintln(w, "Figure 2: The Benefits with Infinite Caches")
	fmt.Fprintln(w, "(normalized execution time, %, vs 1 processor per cluster)")
	s.Opt.printBars(w, bars)
	return nil
}

// Fig3Data produces the Figure 3 bars: Ocean on the small 66×66 grid
// with infinite caches. The paper contrasts it with Figure 2's 130×130
// run: more communication, so clustering helps more, but load imbalance
// and synchronization grow.
func Fig3Data(opt Options) ([]Bar, error) {
	pr := ocean.ParamsFor(opt.Size)
	// The "small problem" halves the grid edge of the Figure 2 run.
	small := pr
	small.N = (pr.N-2)/2 + 2
	if small.N < 10 {
		small.N = 10
	}
	run := func(cs int) (*core.Result, error) {
		return ocean.Run(opt.config(cs, 0), small)
	}
	base, err := run(1)
	if err != nil {
		return nil, err
	}
	var out []Bar
	for _, cs := range ClusterSizes {
		res, err := run(cs)
		if err != nil {
			return nil, err
		}
		out = append(out, Bar{App: "ocean-small", ClusterSize: cs, CacheKB: 0,
			NormalizedBar: res.Normalize(base)})
	}
	return out, nil
}

// Fig3 prints Figure 3.
func Fig3(opt Options) error {
	bars, err := Fig3Data(opt)
	if err != nil {
		return err
	}
	w := opt.out()
	fmt.Fprintln(w, "Figure 3: Ocean, Infinite Cache, Small Problem")
	opt.printBars(w, bars)
	return nil
}

// FiniteFigures maps figure numbers to their applications (Figures 4-8).
var FiniteFigures = map[int]string{
	4: "raytrace",
	5: "mp3d",
	6: "barnes",
	7: "fmm",
	8: "volrend",
}

// FigFiniteData produces one finite-capacity figure: the application at
// 4, 16 and 32 KB per processor plus infinite, each cache size
// normalized to its own 1-processor-cluster bar (as in the paper).
func (s *Suite) FigFiniteData(app string) ([]Bar, error) {
	var out []Bar
	for _, kb := range FiniteCachesKB {
		bars, err := s.barsFor(app, kb)
		if err != nil {
			return nil, err
		}
		out = append(out, bars...)
	}
	return out, nil
}

// FigFinite prints one of Figures 4-8.
func FigFinite(opt Options, fig int) error { return NewSuite(opt).PrintFigFinite(fig) }

// PrintFigFinite prints one of Figures 4-8 using the suite's memoized
// runs.
func (s *Suite) PrintFigFinite(fig int) error {
	app, ok := FiniteFigures[fig]
	if !ok {
		return fmt.Errorf("experiments: no finite-capacity figure %d (have 4-8)", fig)
	}
	bars, err := s.FigFiniteData(app)
	if err != nil {
		return err
	}
	w := s.Opt.out()
	fmt.Fprintf(w, "Figure %d: Finite Capacity Effects for %s\n", fig, app)
	fmt.Fprintln(w, "(per cache size, normalized to that size's 1-processor-cluster time)")
	s.Opt.printBars(w, bars)
	return nil
}
