package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/fault"
	"clustersim/internal/telemetry"
)

// faultPlan is the injection plan of the determinism tests: every fault
// class enabled at rates high enough that each app absorbs faults, low
// enough that nothing starves.
func faultPlan() *fault.Config {
	return &fault.Config{Seed: 7, NackPerMille: 60, AckDelayPerMille: 60, PerturbPerMille: 60}
}

// TestFaultInjectionDeterministic replays every registered application
// twice at cluster size 4 with the same fault seed and requires byte-
// identical Result JSON — the acceptance criterion that injected faults
// are part of the deterministic simulation, not a source of noise. Both
// runs carry the sanitizer, so they are also the sanitizer-clean check:
// injected NACK backoffs, ack delays and jitter must not break a single
// directory/cache invariant (faults only stretch virtual time; they
// never alter protocol state).
func TestFaultInjectionDeterministic(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func() ([]byte, string) {
				t.Helper()
				cfg := detConfig()
				cfg.ClusterSize = 4
				cfg.CacheKBPerProc = 4 // finite: evictions interleave with faults
				cfg.Sanitize = true
				cfg.Faults = faultPlan()
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				hash, err := telemetry.HashConfig(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return blob, hash
			}
			first, hash1 := run()
			second, hash2 := run()
			if hash1 != hash2 {
				t.Errorf("config hash differs across runs: %s vs %s", hash1, hash2)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("fault-injected results differ across identical seeds:\n run 1: %s\n run 2: %s",
					diffHint(first, second), diffHint(second, first))
			}
			var res core.Result
			if err := json.Unmarshal(first, &res); err != nil {
				t.Fatal(err)
			}
			var nacks, cycles uint64
			for _, st := range res.Clusters {
				nacks += st.Nacks
				cycles += st.FaultCycles
			}
			if nacks == 0 || cycles == 0 {
				t.Errorf("plan injected nothing (nacks=%d, fault cycles=%d); the test is vacuous", nacks, cycles)
			}
		})
	}
}

// TestFaultsSanitizerCleanAcrossClusterSizes is the satellite property
// test: MP3D under injected NACKs at every paper cluster size, with the
// per-transaction sanitizer attached. A violation panics inside the
// engine and surfaces as a run error.
func TestFaultsSanitizerCleanAcrossClusterSizes(t *testing.T) {
	w, err := registry.Lookup("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range ClusterSizes {
		cs := cs
		t.Run(clusterName(cs), func(t *testing.T) {
			cfg := detConfig()
			cfg.ClusterSize = cs
			cfg.CacheKBPerProc = 4
			cfg.Sanitize = true
			cfg.Faults = faultPlan()
			res, err := w.Run(cfg, apps.SizeTest)
			if err != nil {
				t.Fatalf("sanitizer or run failure under faults: %v", err)
			}
			var nacks uint64
			for _, st := range res.Clusters {
				nacks += st.Nacks
			}
			if nacks == 0 {
				t.Errorf("no NACKs injected at cluster size %d; property not exercised", cs)
			}
		})
	}
}

// TestFaultsSlowTheMachine pins the direction of the effect: the same
// workload with faults injected must take at least as long as without,
// and strictly longer once fault cycles were actually injected.
func TestFaultsSlowTheMachine(t *testing.T) {
	w, err := registry.Lookup("ocean")
	if err != nil {
		t.Fatal(err)
	}
	base := detConfig()
	base.ClusterSize = 4
	base.CacheKBPerProc = 4
	plain, err := w.Run(base, apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	faulted := base
	faulted.Faults = faultPlan()
	injected, err := w.Run(faulted, apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	var cycles uint64
	for _, st := range injected.Clusters {
		cycles += st.FaultCycles
	}
	if cycles == 0 {
		t.Fatal("plan injected nothing")
	}
	if injected.ExecTime <= plain.ExecTime {
		t.Errorf("injected %d fault cycles but exec time %d did not exceed fault-free %d",
			cycles, injected.ExecTime, plain.ExecTime)
	}
}

// TestExtFaultsData smoke-runs the fault-sweep extension at test size
// and checks its structural claims: a zero level is the baseline
// (slowdown exactly 1, no faults), nonzero levels inject.
func TestExtFaultsData(t *testing.T) {
	opt := DefaultOptions()
	opt.Procs = 8
	opt.Size = apps.SizeTest
	rows, err := ExtFaultsData(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := len(ExtFaultApps) * len(ExtFaultClusterSizes) * len(ExtFaultLevels)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.NackPerMille == 0 {
			if r.Slowdown != 1 || r.Nacks != 0 || r.FaultCycles != 0 {
				t.Errorf("%s c%d baseline row not clean: %+v", r.App, r.ClusterSize, r)
			}
			continue
		}
		if r.Nacks == 0 || r.FaultCycles == 0 {
			t.Errorf("%s c%d level %d injected nothing: %+v", r.App, r.ClusterSize, r.NackPerMille, r)
		}
		// No direction assertion per row: injected delays perturb the
		// interleaving, and a slightly different schedule can finish
		// faster than the baseline (timing-dependent sharing). Direction
		// is pinned separately by TestFaultsSlowTheMachine.
		if r.Slowdown <= 0 {
			t.Errorf("%s c%d level %d nonsensical slowdown: %+v", r.App, r.ClusterSize, r.NackPerMille, r)
		}
	}
}

func clusterName(cs int) string {
	return map[int]string{1: "c1", 2: "c2", 4: "c4", 8: "c8"}[cs]
}
