package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/perf"
	"clustersim/internal/telemetry"
)

// TestMonitorDeterminism attaches the host performance monitor to every
// registered application and requires the monitor to be read-only: the
// Result JSON and config hash of a monitored run stay byte-identical to
// an unmonitored one. It also sanity-checks the report itself — phase
// spans tile the wall clock, deterministic counters are populated, and
// they repeat exactly across identical runs.
func TestMonitorDeterminism(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(withMonitor bool) (blob []byte, hash string, rep *perf.Report) {
				t.Helper()
				cfg := detConfig()
				var mon *perf.Monitor
				if withMonitor {
					mon = perf.New()
					cfg.Perf = mon
				}
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				blob, err = json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				hash, err = telemetry.HashConfig(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return blob, hash, mon.Report()
			}
			plain, hash1, _ := run(false)
			monitored, hash2, rep := run(true)
			if hash2 != hash1 {
				t.Errorf("Perf changed the config hash: %s vs %s", hash2, hash1)
			}
			if !bytes.Equal(plain, monitored) {
				t.Errorf("monitor perturbed the run:\n plain:     %s\n monitored: %s",
					diffHint(plain, monitored), diffHint(monitored, plain))
			}
			if rep.WallNS <= 0 {
				t.Errorf("wall = %d ns, want positive", rep.WallNS)
			}
			if sum := rep.Phases.AppNS + rep.Phases.SchedNS + rep.Phases.CoherenceNS; sum != rep.WallNS {
				t.Errorf("phase spans sum to %d ns, wall is %d ns", sum, rep.WallNS)
			}
			if rep.Handoffs == 0 || rep.Refs == 0 {
				t.Errorf("deterministic counters empty: handoffs=%d refs=%d", rep.Handoffs, rep.Refs)
			}
			if rep.SimCycles <= 0 || rep.CyclesPerSec <= 0 {
				t.Errorf("throughput empty: %d cycles, %f cycles/s", rep.SimCycles, rep.CyclesPerSec)
			}
			// Handoffs and Refs are a function of the simulation alone, so
			// a second monitored run must reproduce them exactly.
			_, _, rep2 := run(true)
			if rep2.Handoffs != rep.Handoffs || rep2.Refs != rep.Refs || rep2.SimCycles != rep.SimCycles {
				t.Errorf("deterministic counters drifted: handoffs %d vs %d, refs %d vs %d, simcycles %d vs %d",
					rep.Handoffs, rep2.Handoffs, rep.Refs, rep2.Refs, rep.SimCycles, rep2.SimCycles)
			}
		})
	}
}
