package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/core"
	"clustersim/internal/telemetry"
)

func journalOpts(t *testing.T) Options {
	t.Helper()
	opt := DefaultOptions()
	opt.Procs = 8
	opt.Size = apps.SizeTest
	opt.Out = io.Discard
	return opt
}

func TestJournalRoundTrip(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{ExecTime: 12345, Config: core.DefaultConfig()}
	rec := PointRecord{App: "ocean", Size: "test", ClusterSize: 4, CacheKB: 16,
		ConfigHash: "sha256:deadbeef", Result: res}
	if err := j.Store(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := j.Load("ocean", "test", 4, 16, "sha256:deadbeef")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Errorf("result did not round-trip:\n stored %s\n loaded %s", a, b)
	}
	// A different key is a miss, not an error.
	if _, ok, err := j.Load("ocean", "test", 2, 16, "sha256:deadbeef"); ok || err != nil {
		t.Errorf("wrong cluster size: ok=%v err=%v", ok, err)
	}
	if _, ok, err := j.Load("ocean", "test", 4, 16, "sha256:feedface"); ok || err != nil {
		t.Errorf("wrong hash: ok=%v err=%v", ok, err)
	}
}

func TestJournalFailureRoundTrip(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fr := FailureRecord{App: "mp3d", Size: "test", ClusterSize: 2, CacheKB: 4,
		ConfigHash: "sha256:0123", Error: `engine: app "mp3d": processor 3 panicked at virtual time 99: boom`}
	if err := j.StoreFailure(fr); err != nil {
		t.Fatal(err)
	}
	got, ok, err := j.LoadFailure("mp3d", "test", 2, 4, "sha256:0123")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.Error != fr.Error {
		t.Errorf("error text did not round-trip: %q", got.Error)
	}
	// A success for the same point supersedes the failure.
	if err := j.Store(PointRecord{App: "mp3d", Size: "test", ClusterSize: 2, CacheKB: 4,
		ConfigHash: "sha256:0123", Result: &core.Result{ExecTime: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := j.LoadFailure("mp3d", "test", 2, 4, "sha256:0123"); ok {
		t.Error("stored success did not clear the failure record")
	}
}

// TestSuiteResumeByteIdentical is the acceptance criterion's unit form:
// a suite interrupted after an arbitrary number of points and resumed
// from its journal emits tables byte-identical to an uninterrupted run.
func TestSuiteResumeByteIdentical(t *testing.T) {
	apps2 := []string{"mp3d", "ocean"}
	render := func(s *Suite) (string, error) {
		var buf bytes.Buffer
		for _, app := range apps2 {
			bars, err := s.barsFor(app, 4)
			if err != nil {
				return "", err
			}
			printBars(&buf, bars)
		}
		return buf.String(), nil
	}

	clean, err := render(NewSuite(journalOpts(t)))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := journalOpts(t)
	interrupted.Journal = j
	interrupted.StopAfter = 3
	if _, err := render(NewSuite(interrupted)); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted after 3 points, got %v", err)
	}

	resumed := journalOpts(t)
	resumed.Journal = j
	var progress bytes.Buffer
	resumed.Progress = &progress
	rs := NewSuite(resumed)
	out, err := render(rs)
	if err != nil {
		t.Fatal(err)
	}
	if out != clean {
		t.Errorf("resumed tables differ from the uninterrupted run:\n--- clean ---\n%s--- resumed ---\n%s", clean, out)
	}
	if !strings.Contains(progress.String(), "replayed") {
		t.Errorf("resume simulated everything from scratch; progress log:\n%s", progress.String())
	}
	if rs.fresh >= len(apps2)*len(ClusterSizes) {
		t.Errorf("resume re-simulated all %d points (journal ignored)", rs.fresh)
	}

	// A third pass replays everything: zero fresh simulations.
	final := journalOpts(t)
	final.Journal = j
	fs := NewSuite(final)
	out2, err := render(fs)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != clean {
		t.Error("full replay diverged from the clean run")
	}
	if fs.fresh != 0 {
		t.Errorf("full replay still simulated %d points", fs.fresh)
	}
}

// TestSuiteSkipsJournalledFailure: a point recorded as failed is
// reported, not silently re-run; RetryFailed re-attempts it and a
// success clears the record.
func TestSuiteSkipsJournalledFailure(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := journalOpts(t)
	opt.Journal = j

	// Fabricate a failure record under the exact key Suite.Run computes.
	cfg := opt.config(2, 0)
	hash := mustHash(t, cfg)
	if err := j.StoreFailure(FailureRecord{App: "ocean", Size: opt.Size.String(),
		ClusterSize: 2, CacheKB: 0, ConfigHash: hash, Error: "watchdog: point exceeded the 1s wall-clock budget"}); err != nil {
		t.Fatal(err)
	}

	s := NewSuite(opt)
	if _, err := s.Run("ocean", 2, 0); err == nil ||
		!strings.Contains(err.Error(), "journalled as failed") {
		t.Fatalf("want journalled-failure error, got %v", err)
	}

	retry := opt
	retry.RetryFailed = true
	rs := NewSuite(retry)
	if _, err := rs.Run("ocean", 2, 0); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if _, ok, _ := j.LoadFailure("ocean", opt.Size.String(), 2, 0, hash); ok {
		t.Error("successful retry left the failure record behind")
	}
	// And the post-retry journal now replays.
	again := NewSuite(opt)
	if _, err := again.Run("ocean", 2, 0); err != nil {
		t.Errorf("replay after retry: %v", err)
	}
	if again.fresh != 0 {
		t.Errorf("replay after retry simulated %d points", again.fresh)
	}
}

// TestSuiteRetryAfterWatchdogByteIdentical pins the -point-timeout /
// -retry-failed interaction end to end: a point the watchdog journalled
// as failed (before exiting ExitWatchdog) blocks later replays loudly
// until -retry-failed re-attempts it — with a watchdog still armed on
// the retry — and the healed run's tables are byte-identical to a run
// that never failed at all.
func TestSuiteRetryAfterWatchdogByteIdentical(t *testing.T) {
	render := func(s *Suite) (string, error) {
		var buf bytes.Buffer
		bars, err := s.barsFor("ocean", 4)
		if err != nil {
			return "", err
		}
		printBars(&buf, bars)
		return buf.String(), nil
	}

	clean, err := render(NewSuite(journalOpts(t)))
	if err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := journalOpts(t)
	opt.Journal = j
	// Fabricate exactly what a prior run's watchdog leaves behind just
	// before the process exits with ExitWatchdog: a failure record under
	// the key Suite.Run computes for the wedged point.
	hash := mustHash(t, opt.config(2, 4))
	if err := j.StoreFailure(FailureRecord{App: "ocean", Size: opt.Size.String(),
		ClusterSize: 2, CacheKB: 4, ConfigHash: hash,
		Error: "watchdog: point ocean-c2-4k exceeded the 1ms wall-clock budget"}); err != nil {
		t.Fatal(err)
	}

	// Without -retry-failed the poisoned point refuses loudly.
	if _, err := render(NewSuite(opt)); err == nil ||
		!strings.Contains(err.Error(), "journalled as failed") {
		t.Fatalf("want journalled-failure error, got %v", err)
	}

	// -retry-failed re-attempts it with the watchdog re-armed (a budget
	// the healthy point cannot hit — the flags must compose, not fight).
	retry := opt
	retry.RetryFailed = true
	retry.PointTimeout = 5 * time.Minute
	out, err := render(NewSuite(retry))
	if err != nil {
		t.Fatalf("retry run: %v", err)
	}
	if out != clean {
		t.Errorf("retried run differs from the never-failed run:\n--- clean ---\n%s--- retried ---\n%s", clean, out)
	}
	if _, ok, _ := j.LoadFailure("ocean", opt.Size.String(), 2, 4, hash); ok {
		t.Error("successful retry left the failure record behind")
	}

	// The healed journal now replays everything, still byte-identical.
	again := NewSuite(opt)
	out2, err := render(again)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != clean {
		t.Error("post-retry replay diverged from the clean run")
	}
	if again.fresh != 0 {
		t.Errorf("post-retry replay simulated %d fresh points", again.fresh)
	}
}

// TestSuitePanicIsolation: a panicking point becomes an error and a
// journal failure record, and does not kill the process.
func TestSuitePanicIsolation(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := journalOpts(t)
	opt.Journal = j
	// Exercise the isolation wrapper directly: runPoint must convert a
	// panic escaping the workload (outside the engine) into an error.
	w := apps.Runner{Name: "boom", Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
		panic("setup exploded")
	}}
	if _, err := runPoint(w, opt.config(1, 0), opt.Size); err == nil ||
		!strings.Contains(err.Error(), "setup exploded") {
		t.Fatalf("want isolated panic error, got %v", err)
	}
}

func mustHash(t *testing.T, cfg core.Config) string {
	t.Helper()
	h, err := telemetry.HashConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
