package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
)

// Exit codes of the experiments CLI, distinct so scripts (and the
// resume smoke test) can tell failure modes apart.
const (
	ExitOK          = 0 // every requested experiment completed
	ExitFailures    = 1 // at least one point or experiment failed; the rest ran
	ExitUsage       = 2 // bad flags or configuration
	ExitInterrupted = 3 // SIGINT/SIGTERM (or -stop-after) stopped the suite between points
	ExitWatchdog    = 4 // -point-timeout aborted a hung point
)

// ErrInterrupted reports that the suite stopped between points — on an
// operator signal or a -stop-after budget — with all completed work
// flushed. It is a clean stop, not a failure: resume from the same
// -state directory.
var ErrInterrupted = errors.New("experiments: interrupted; resume from the -state directory")

// SignalStop converts SIGINT/SIGTERM into a cooperative stop flag the
// suite polls between simulation points, so the point in flight
// finishes and its journal/trace/profile/manifest writes are flushed
// whole. A second signal exits immediately.
type SignalStop struct {
	stopped atomic.Bool
	ch      chan os.Signal

	mu         sync.Mutex
	journalDir string
	// exit is the process terminator the second signal invokes;
	// os.Exit in production, injectable so the second-signal path is
	// testable in-process. msgW is where operator-facing messages go
	// (os.Stderr in production, a buffer in tests).
	exit func(int)
	msgW io.Writer
}

// NewSignalStop installs the handler. Call Close to uninstall.
func NewSignalStop() *SignalStop {
	s := &SignalStop{ch: make(chan os.Signal, 2), exit: os.Exit, msgW: os.Stderr}
	signal.Notify(s.ch, syscall.SIGINT, syscall.SIGTERM)
	s.watch()
	return s
}

// watch runs the signal state machine: first signal flips the stop
// flag, second terminates.
func (s *SignalStop) watch() {
	// Harness-level watcher, not simulation code: it only flips the stop
	// flag the suite polls between points (and force-exits on a second
	// signal), so it cannot perturb virtual-time ordering.
	go func() { //simlint:allow goroutine
		sig, ok := <-s.ch
		if !ok {
			return
		}
		s.stopped.Store(true)
		s.printf("experiments: %v: finishing the current point, then flushing; repeat to exit now%s\n",
			sig, s.resumeHint())
		if sig, ok := <-s.ch; ok {
			s.printf("experiments: second %v: exiting immediately%s\n", sig, s.resumeHint())
			s.mu.Lock()
			exit := s.exit
			s.mu.Unlock()
			exit(ExitInterrupted)
		}
	}()
}

// SetJournalDir tells the stop messages where completed work lives, so
// the operator staring at a slow point knows exactly how to resume
// before deciding to signal again.
func (s *SignalStop) SetJournalDir(dir string) {
	s.mu.Lock()
	s.journalDir = dir
	s.mu.Unlock()
}

func (s *SignalStop) resumeHint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journalDir == "" {
		return ""
	}
	return fmt.Sprintf(" (completed points are journalled; resume with -state %s)", s.journalDir)
}

func (s *SignalStop) printf(format string, args ...any) {
	s.mu.Lock()
	w := s.msgW
	s.mu.Unlock()
	fmt.Fprintf(w, format, args...)
}

// setExit injects a fake process terminator (tests only).
func (s *SignalStop) setExit(exit func(int)) {
	s.mu.Lock()
	s.exit = exit
	s.mu.Unlock()
}

// setMessageWriter redirects operator messages (tests only).
func (s *SignalStop) setMessageWriter(w io.Writer) {
	s.mu.Lock()
	s.msgW = w
	s.mu.Unlock()
}

// deliver injects a signal as if the OS had sent it (tests only; the
// production path receives from signal.Notify on the same channel).
func (s *SignalStop) deliver(sig os.Signal) { s.ch <- sig }

// Stopped reports whether a signal has arrived; the suite polls it
// between points via Options.Stop.
func (s *SignalStop) Stopped() bool { return s.stopped.Load() }

// Close uninstalls the handler and releases the watcher.
func (s *SignalStop) Close() {
	signal.Stop(s.ch)
	close(s.ch)
}
