package experiments

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// Exit codes of the experiments CLI, distinct so scripts (and the
// resume smoke test) can tell failure modes apart.
const (
	ExitOK          = 0 // every requested experiment completed
	ExitFailures    = 1 // at least one point or experiment failed; the rest ran
	ExitUsage       = 2 // bad flags or configuration
	ExitInterrupted = 3 // SIGINT/SIGTERM (or -stop-after) stopped the suite between points
	ExitWatchdog    = 4 // -point-timeout aborted a hung point
)

// ErrInterrupted reports that the suite stopped between points — on an
// operator signal or a -stop-after budget — with all completed work
// flushed. It is a clean stop, not a failure: resume from the same
// -state directory.
var ErrInterrupted = errors.New("experiments: interrupted; resume from the -state directory")

// SignalStop converts SIGINT/SIGTERM into a cooperative stop flag the
// suite polls between simulation points, so the point in flight
// finishes and its journal/trace/profile/manifest writes are flushed
// whole. A second signal exits immediately.
type SignalStop struct {
	stopped atomic.Bool
	ch      chan os.Signal
}

// NewSignalStop installs the handler. Call Close to uninstall.
func NewSignalStop() *SignalStop {
	s := &SignalStop{ch: make(chan os.Signal, 2)}
	signal.Notify(s.ch, syscall.SIGINT, syscall.SIGTERM)
	// Harness-level watcher, not simulation code: it only flips the stop
	// flag the suite polls between points (and force-exits on a second
	// signal), so it cannot perturb virtual-time ordering.
	go func() { //simlint:allow goroutine
		sig, ok := <-s.ch
		if !ok {
			return
		}
		s.stopped.Store(true)
		fmt.Fprintf(os.Stderr, "experiments: %v: finishing the current point, then flushing; repeat to exit now\n", sig)
		if sig, ok := <-s.ch; ok {
			fmt.Fprintf(os.Stderr, "experiments: second %v: exiting immediately\n", sig)
			os.Exit(ExitInterrupted)
		}
	}()
	return s
}

// Stopped reports whether a signal has arrived; the suite polls it
// between points via Options.Stop.
func (s *SignalStop) Stopped() bool { return s.stopped.Load() }

// Close uninstalls the handler and releases the watcher.
func (s *SignalStop) Close() {
	signal.Stop(s.ch)
	close(s.ch)
}
