package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"clustersim/internal/core"
)

// Stacked-bar rendering for the figures, in the style of the paper's
// normalized-execution-time charts. Each bar is scaled so that 100%
// equals barWidth columns; segments use distinct fills:
//
//	█ cpu   ▒ load stall   ▓ merge stall   ░ sync wait

const barWidth = 50

// RenderBars draws the stacked bars as ASCII art, one row per
// configuration, grouped by application and cache size.
func RenderBars(w io.Writer, bars []Bar) {
	fmt.Fprintf(w, "%-10s %-5s %-4s %-*s %6s\n", "app", "cache", "clus", barWidth+2, "", "total")
	prevGroup := ""
	for _, b := range bars {
		group := b.App + cacheName(b.CacheKB)
		if prevGroup != "" && group != prevGroup {
			fmt.Fprintln(w)
		}
		prevGroup = group
		fmt.Fprintf(w, "%-10s %-5s %-4s |%s| %6.1f\n",
			b.App, cacheName(b.CacheKB), fmt.Sprintf("%dp", b.ClusterSize),
			renderBar(b.NormalizedBar), b.Total)
	}
	fmt.Fprintln(w, "legend: █ cpu  ▒ load  ▓ merge  ░ sync   (bar width 100% =", barWidth, "cols)")
}

// WriteBarsCSV emits figure data as CSV for external plotting:
// app,cache_kb,cluster,total,cpu,load,merge,sync.
func WriteBarsCSV(w io.Writer, bars []Bar) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "cache_kb", "cluster", "total", "cpu", "load", "merge", "sync"}); err != nil {
		return err
	}
	for _, b := range bars {
		rec := []string{
			b.App,
			fmt.Sprintf("%d", b.CacheKB),
			fmt.Sprintf("%d", b.ClusterSize),
			fmt.Sprintf("%.2f", b.Total),
			fmt.Sprintf("%.2f", b.CPU),
			fmt.Sprintf("%.2f", b.Load),
			fmt.Sprintf("%.2f", b.Merge),
			fmt.Sprintf("%.2f", b.Sync),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// renderBar converts one normalized bar into its fill string. Segment
// widths are rounded while preserving the total width, largest-remainder
// style, so the drawn bar length always matches the total.
func renderBar(b core.NormalizedBar) string {
	total := int(b.Total*float64(barWidth)/100 + 0.5)
	if total < 0 {
		total = 0
	}
	segs := []struct {
		val  float64
		fill rune
	}{
		{b.CPU, '█'},
		{b.Load, '▒'},
		{b.Merge, '▓'},
		{b.Sync, '░'},
	}
	var sb strings.Builder
	drawn := 0
	sum := b.CPU + b.Load + b.Merge + b.Sync
	for i, s := range segs {
		var n int
		if sum > 0 {
			n = int(s.val*float64(total)/sum + 0.5)
		}
		if i == len(segs)-1 {
			n = total - drawn // absorb rounding in the last segment
		}
		if n < 0 {
			n = 0
		}
		if drawn+n > total {
			n = total - drawn
		}
		for j := 0; j < n; j++ {
			sb.WriteRune(s.fill)
		}
		drawn += n
	}
	// Pad to a fixed canvas slightly wider than 100% so the >100% bars
	// of slowed-down configurations still fit (count runes, not bytes).
	for drawn < barWidth+10 {
		sb.WriteByte(' ')
		drawn++
	}
	return sb.String()
}
