package experiments

import (
	"fmt"

	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
)

// The paper closes by listing what a careful study of shared first-level
// caches still needs: "looking at contention issues, the effects of
// increased delay slots and compiler scheduling, and the destructive
// interference due to limited associativity", and its Section 2 taxonomy
// describes a second cluster type — shared-main-memory clusters — that
// the main study does not simulate. The two extension experiments below
// implement both follow-ups.

// AssocRow is one cell of the associativity (destructive interference)
// study.
type AssocRow struct {
	App         string
	Ways        int // 0 = fully associative
	ClusterSize int
	ExecTime    core.Clock
	ReadMisses  uint64
	Evictions   uint64
}

// ExtAssocApps are the applications used in the associativity study:
// one with structured disjoint access (ocean) and one with a shared
// read-mostly working set (barnes), per the paper's request to examine
// "interference effects in the cases of structured access patterns as
// well".
var ExtAssocApps = []string{"ocean", "barnes"}

// ExtAssocWays are the studied associativities (0 = fully associative).
var ExtAssocWays = []int{0, 8, 2, 1}

// ExtAssociativityData measures destructive interference: 4 KB per
// processor, sweeping associativity and cluster size. As associativity
// falls and more processors share a cache, conflict misses grow.
func ExtAssociativityData(opt Options) ([]AssocRow, error) {
	var rows []AssocRow
	for _, app := range ExtAssocApps {
		w, err := registry.Lookup(app)
		if err != nil {
			return nil, err
		}
		for _, ways := range ExtAssocWays {
			for _, cs := range ClusterSizes {
				cfg := opt.config(cs, 4)
				cfg.Assoc = ways
				res, err := w.Run(cfg, opt.Size)
				if err != nil {
					return nil, fmt.Errorf("%s ways=%d cluster=%d: %w", app, ways, cs, err)
				}
				agg := res.Aggregate()
				var ev uint64
				for cl := 0; cl < cfg.NumClusters(); cl++ {
					// Evictions live on the cache stores; the protocol
					// counters track hints+writebacks, whose sum equals
					// victims that notified the directory.
					st := res.Clusters[cl]
					ev += st.ReplacementHints + st.Writebacks
				}
				rows = append(rows, AssocRow{
					App: app, Ways: ways, ClusterSize: cs,
					ExecTime: res.ExecTime, ReadMisses: agg.ReadMisses + agg.Merges,
					Evictions: ev,
				})
			}
		}
	}
	return rows, nil
}

// ExtAssociativity prints the destructive-interference study.
func ExtAssociativity(opt Options) error {
	rows, err := ExtAssociativityData(opt)
	if err != nil {
		return err
	}
	w := opt.out()
	fmt.Fprintln(w, "Extension A: Destructive Interference from Limited Associativity")
	fmt.Fprintln(w, "(4 KB per processor; the paper's main study is fully associative)")
	fmt.Fprintf(w, "%-10s %-6s %-6s %12s %12s %12s\n",
		"app", "ways", "clus", "exec cycles", "read misses", "evictions")
	for _, r := range rows {
		ways := "full"
		if r.Ways > 0 {
			ways = fmt.Sprintf("%d", r.Ways)
		}
		fmt.Fprintf(w, "%-10s %-6s %-6s %12d %12d %12d\n",
			r.App, ways, fmt.Sprintf("%dp", r.ClusterSize), r.ExecTime, r.ReadMisses, r.Evictions)
	}
	return nil
}

// OrgRow is one cell of the cluster-organisation comparison.
type OrgRow struct {
	App          string
	Organization core.Organization
	ClusterSize  int
	ExecTime     core.Clock
	IntraFrac    float64 // fraction of miss services satisfied in-cluster
}

// ExtOrgApps are the applications compared across cluster organisations.
var ExtOrgApps = []string{"ocean", "mp3d", "barnes"}

// ExtOrganizationsData compares the paper's two cluster types at equal
// per-processor cache budget (4 KB): shared-cache clusters overlap
// working sets; shared-main-memory clusters avoid interference and turn
// communication into cheap snoopy-bus transfers.
func ExtOrganizationsData(opt Options) ([]OrgRow, error) {
	var rows []OrgRow
	for _, app := range ExtOrgApps {
		w, err := registry.Lookup(app)
		if err != nil {
			return nil, err
		}
		for _, org := range []core.Organization{core.SharedCache, core.SharedMemory} {
			for _, cs := range ClusterSizes {
				cfg := opt.config(cs, 4)
				cfg.Organization = org
				res, err := w.Run(cfg, opt.Size)
				if err != nil {
					return nil, fmt.Errorf("%s %v cluster=%d: %w", app, org, cs, err)
				}
				agg := res.Aggregate()
				served := agg.LocalClean + agg.LocalDirty + agg.RemoteClean +
					agg.RemoteDirty + agg.IntraCluster
				frac := 0.0
				if served > 0 {
					frac = float64(agg.IntraCluster) / float64(served)
				}
				rows = append(rows, OrgRow{
					App: app, Organization: org, ClusterSize: cs,
					ExecTime: res.ExecTime, IntraFrac: frac,
				})
			}
		}
	}
	return rows, nil
}

// ExtOrganizations prints the cluster-organisation comparison.
func ExtOrganizations(opt Options) error {
	rows, err := ExtOrganizationsData(opt)
	if err != nil {
		return err
	}
	w := opt.out()
	fmt.Fprintln(w, "Extension B: Shared-Cache vs Shared-Main-Memory Clusters")
	fmt.Fprintln(w, "(4 KB per processor; shared-memory clusters add an infinite attraction memory)")
	fmt.Fprintf(w, "%-10s %-14s %-6s %12s %14s\n",
		"app", "organization", "clus", "exec cycles", "in-cluster svc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-14s %-6s %12d %13.1f%%\n",
			r.App, r.Organization, fmt.Sprintf("%dp", r.ClusterSize),
			r.ExecTime, 100*r.IntraFrac)
	}
	return nil
}

// ScaleRow is one cell of the processor-scaling study.
type ScaleRow struct {
	Procs       int
	ClusterSize int
	ExecTime    core.Clock
	Speedup     float64 // vs the smallest machine, same cluster size
}

// ExtScalingProcs are the machine sizes swept by the scaling study.
var ExtScalingProcs = []int{16, 32, 64}

// ExtScalingData tests the paper's closing speculation for near-
// neighbour codes: "clustering may push out the number of processors
// that can be used effectively on a fixed problem size". It runs Ocean's
// small (Figure 3) problem on growing machines, unclustered vs 4-way
// clustered.
func ExtScalingData(opt Options) ([]ScaleRow, error) {
	w, err := registry.Lookup("ocean")
	if err != nil {
		return nil, err
	}
	var rows []ScaleRow
	for _, cs := range []int{1, 4} {
		var base core.Clock
		for _, procs := range ExtScalingProcs {
			o := opt
			o.Procs = procs
			cfg := o.config(cs, 0)
			res, err := w.Run(cfg, opt.Size)
			if err != nil {
				return nil, fmt.Errorf("ocean procs=%d cluster=%d: %w", procs, cs, err)
			}
			if base == 0 {
				base = res.ExecTime // speedup baseline: smallest machine
			}
			rows = append(rows, ScaleRow{
				Procs: procs, ClusterSize: cs, ExecTime: res.ExecTime,
				Speedup: float64(base) / float64(res.ExecTime),
			})
		}
	}
	return rows, nil
}

// ExtScaling prints the processor-scaling study.
func ExtScaling(opt Options) error {
	rows, err := ExtScalingData(opt)
	if err != nil {
		return err
	}
	w := opt.out()
	fmt.Fprintln(w, "Extension C: Clustering Extends Processor Scaling (Ocean, fixed problem)")
	fmt.Fprintf(w, "%-8s %-8s %14s %10s\n", "procs", "cluster", "exec cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-8s %14d %9.2fx\n",
			r.Procs, fmt.Sprintf("%d-way", r.ClusterSize), r.ExecTime, r.Speedup)
	}
	fmt.Fprintln(w, "(speedup vs the 16-processor machine at the same cluster size)")
	return nil
}
