package experiments

import (
	"fmt"

	"clustersim/internal/apps/registry"
	"clustersim/internal/coherence"
	"clustersim/internal/contention"
)

// Table1 prints the memory-operation latencies the simulator uses.
func Table1(opt Options) error {
	w := opt.out()
	l := coherence.DefaultLatencies()
	fmt.Fprintln(w, "Table 1: Latency of Memory Operations (cycles)")
	fmt.Fprintf(w, "  Hit in cache (1 processor per cluster)                 %5d\n", coherence.SharedCacheHitCycles(1))
	fmt.Fprintf(w, "  Hit in cache (2 processors per cluster)                %5d\n", coherence.SharedCacheHitCycles(2))
	fmt.Fprintf(w, "  Hit in cache (4 and 8 processors per cluster)          %5d\n", coherence.SharedCacheHitCycles(4))
	fmt.Fprintf(w, "  Miss to local home, satisfied by home cluster          %5d\n", l.LocalClean)
	fmt.Fprintf(w, "  Miss to local home, satisfied by remote cluster        %5d\n", l.LocalDirty)
	fmt.Fprintf(w, "  Miss to remote home, satisfied by home                 %5d\n", l.RemoteClean)
	fmt.Fprintf(w, "  Miss to remote home, satisfied by third party cluster  %5d\n", l.RemoteDirty)
	return nil
}

// Table2 prints the application inventory.
func Table2(opt Options) error {
	w := opt.out()
	fmt.Fprintln(w, "Table 2: Applications and Problem Sizes")
	fmt.Fprintf(w, "%-10s %-42s %s\n", "app", "representative of", "paper problem size")
	for _, wk := range registry.All() {
		fmt.Fprintf(w, "%-10s %-42s %s\n", wk.Name, wk.Representative, wk.PaperProblem)
	}
	return nil
}

// WorkingSetRow is one application's measured working-set knee.
type WorkingSetRow struct {
	App string
	// MissRateAtKB maps swept per-processor cache sizes to the read miss
	// rate of the unclustered machine.
	MissRateAtKB map[int]float64
	InfMissRate  float64
	// KneeKB is the smallest swept cache whose miss rate comes within
	// 25% of the infinite-cache rate; 0 if even the largest does not.
	KneeKB int
}

// WorkingSetSweepKB are the per-processor cache sizes swept by Table 3.
var WorkingSetSweepKB = []int{1, 2, 4, 8, 16, 32, 64}

// Table3Data measures each application's working-set knee by sweeping
// the unclustered cache size — the quantitative counterpart of the
// paper's Table 3.
func (s *Suite) Table3Data() ([]WorkingSetRow, error) {
	var rows []WorkingSetRow
	for _, wk := range registry.All() {
		inf, err := s.Run(wk.Name, 1, 0)
		if err != nil {
			return nil, err
		}
		row := WorkingSetRow{App: wk.Name, MissRateAtKB: map[int]float64{}}
		row.InfMissRate = inf.Aggregate().ReadMissRate()
		for _, kb := range WorkingSetSweepKB {
			res, err := s.Run(wk.Name, 1, kb)
			if err != nil {
				return nil, err
			}
			mr := res.Aggregate().ReadMissRate()
			row.MissRateAtKB[kb] = mr
			if row.KneeKB == 0 && mr <= row.InfMissRate*1.25+1e-9 {
				row.KneeKB = kb
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3 prints the communication structure and measured working sets.
func Table3(opt Options) error { return NewSuite(opt).PrintTable3() }

// PrintTable3 prints Table 3 using the suite's memoized runs.
func (s *Suite) PrintTable3() error {
	rows, err := s.Table3Data()
	if err != nil {
		return err
	}
	w := s.Opt.out()
	fmt.Fprintln(w, "Table 3: Communication Structure and Working Set Sizes")
	fmt.Fprintf(w, "%-10s %-40s %-28s %s\n", "app", "major communication pattern", "paper working set", "measured knee")
	for i, wk := range registry.All() {
		knee := "> 64KB"
		if rows[i].KneeKB > 0 {
			knee = fmt.Sprintf("%d KB", rows[i].KneeKB)
		}
		fmt.Fprintf(w, "%-10s %-40s %-28s %s\n", wk.Name, wk.Communication, wk.WorkingSet, knee)
	}
	fmt.Fprintln(w, "\nread miss rate by per-processor cache size (unclustered):")
	fmt.Fprintf(w, "%-10s", "app")
	for _, kb := range WorkingSetSweepKB {
		fmt.Fprintf(w, " %7dK", kb)
	}
	fmt.Fprintf(w, " %8s\n", "inf")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.App)
		for _, kb := range WorkingSetSweepKB {
			fmt.Fprintf(w, " %7.4f%%", 100*r.MissRateAtKB[kb])
		}
		fmt.Fprintf(w, " %7.4f%%\n", 100*r.InfMissRate)
	}
	return nil
}

// Table4 prints the bank-conflict probabilities.
func Table4(opt Options) error {
	w := opt.out()
	fmt.Fprintln(w, "Table 4: Probabilities of Bank Conflict")
	fmt.Fprintf(w, "%-18s %-10s %s\n", "processors/cache", "banks", "P(collision)")
	for _, n := range ClusterSizes {
		m := contention.Banks(n)
		fmt.Fprintf(w, "%-18d %-10d %.3f\n", n, m, contention.ClusterConflictProbability(n))
	}
	return nil
}

// Table5Row is one application's load-latency expansion factors.
type Table5Row struct {
	App     string
	Factors contention.LoadFactors
}

// Table5Data measures the Table 5 execution-time expansion factors from
// each application's unclustered, infinite-cache profile.
func (s *Suite) Table5Data() ([]Table5Row, error) {
	var rows []Table5Row
	for _, wk := range registry.All() {
		res, err := s.Run(wk.Name, 1, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			App:     wk.Name,
			Factors: contention.LoadLatencyFactors(res, contention.DefaultLoadExposure),
		})
	}
	return rows, nil
}

// Table5 prints the load-latency execution-time factors.
func Table5(opt Options) error { return NewSuite(opt).PrintTable5() }

// PrintTable5 prints Table 5 using the suite's memoized runs.
func (s *Suite) PrintTable5() error {
	rows, err := s.Table5Data()
	if err != nil {
		return err
	}
	w := s.Opt.out()
	fmt.Fprintln(w, "Table 5: Load Latency Execution Time Factors")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "app", "1 cycle", "2 cycles", "3 cycles", "4 cycles")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f %8.3f\n", r.App,
			r.Factors[0], r.Factors[1], r.Factors[2], r.Factors[3])
	}
	return nil
}

// CostedRow is one cell row of Tables 6 and 7.
type CostedRow struct {
	App      string
	Relative map[int]float64 // cluster size -> costed relative time
}

// Table6Apps are the paper's Table 6 applications (4 KB caches).
var Table6Apps = []string{"barnes", "radix", "volrend", "mp3d"}

// Table7Apps are the paper's Table 7 applications (infinite caches).
var Table7Apps = []string{"ocean", "lu"}

// CostedData computes clustering-with-costs rows for the given
// applications at one cache size, combining the simulated times with the
// shared-cache cost factor.
func (s *Suite) CostedData(appNames []string, cacheKB int) ([]CostedRow, error) {
	var rows []CostedRow
	for _, app := range appNames {
		prof, err := s.Run(app, 1, 0)
		if err != nil {
			return nil, err
		}
		lf := contention.LoadLatencyFactors(prof, contention.DefaultLoadExposure)
		base, err := s.Run(app, 1, cacheKB)
		if err != nil {
			return nil, err
		}
		row := CostedRow{App: app, Relative: map[int]float64{}}
		for _, cs := range ClusterSizes {
			res, err := s.Run(app, cs, cacheKB)
			if err != nil {
				return nil, err
			}
			row.Relative[cs] = contention.CostedRelativeTime(res, base, lf)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func printCosted(opt Options, title string, rows []CostedRow) {
	w := opt.out()
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-10s", "app")
	for _, cs := range ClusterSizes {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("%d-way", cs))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.App)
		for _, cs := range ClusterSizes {
			fmt.Fprintf(w, " %8.2f", r.Relative[cs])
		}
		fmt.Fprintln(w)
	}
}

// Table6 prints the relative execution time of clustering with 4 KB
// caches, including shared-cache costs.
func Table6(opt Options) error { return NewSuite(opt).PrintTable6() }

// PrintTable6 prints Table 6 using the suite's memoized runs.
func (s *Suite) PrintTable6() error {
	rows, err := s.CostedData(Table6Apps, 4)
	if err != nil {
		return err
	}
	printCosted(s.Opt, "Table 6: Relative Execution Time of Clustering with 4KB Caches", rows)
	return nil
}

// Table7 prints the relative execution time of clustering with infinite
// caches, including shared-cache costs.
func Table7(opt Options) error { return NewSuite(opt).PrintTable7() }

// PrintTable7 prints Table 7 using the suite's memoized runs.
func (s *Suite) PrintTable7() error {
	rows, err := s.CostedData(Table7Apps, 0)
	if err != nil {
		return err
	}
	printCosted(s.Opt, "Table 7: Relative Execution Time of Clustering with Infinite Caches", rows)
	return nil
}
