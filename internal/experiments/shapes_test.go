package experiments

import (
	"strings"
	"testing"

	"clustersim/internal/apps"
)

// TestPaperShapes asserts the paper's central qualitative findings on a
// 16-processor machine at test problem sizes, sharing one memoized
// suite. Each subtest cites the claim it checks.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	s := NewSuite(Options{Procs: 16, Size: apps.SizeTest, Out: &buf})

	rel := func(app string, cs, kb int) float64 {
		base, err := s.Run(app, 1, kb)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(app, cs, kb)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.ExecTime) / float64(base.ExecTime)
	}

	t.Run("OceanGainsFromNearNeighbour", func(t *testing.T) {
		// "Ocean shows a significant decrease in execution time as the
		// size of the cluster is increased."
		if r := rel("ocean", 8, 0); r > 0.85 {
			t.Errorf("ocean 8-way relative time %.3f; expected a clear gain", r)
		}
		// Load stall should roughly halve per doubling.
		r2, err := s.Run("ocean", 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := s.Run("ocean", 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(r2.Aggregate().LoadStall) / float64(r1.Aggregate().LoadStall)
		if ratio > 0.75 {
			t.Errorf("ocean 2-way load-stall ratio %.3f; expected ≈0.5", ratio)
		}
	})

	t.Run("LUNearNeutralInfinite", func(t *testing.T) {
		// "The eight processor cluster has over 98% of the execution
		// time of the single processor cluster" — at our scale: within
		// a modest band of neutral, far from Ocean's gain.
		lu := rel("lu", 8, 0)
		ocean := rel("ocean", 8, 0)
		if lu < ocean {
			t.Errorf("LU (%.3f) should benefit less than Ocean (%.3f)", lu, ocean)
		}
	})

	t.Run("RadixConvertsLoadToMerge", func(t *testing.T) {
		// "Radix sort shows significant prefetching effects ... but the
		// merge times are significant."
		base, err := s.Run("radix", 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		clus, err := s.Run("radix", 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if clus.Aggregate().MergeStall <= base.Aggregate().MergeStall {
			t.Errorf("clustered radix should accumulate merge stall: %d vs %d",
				clus.Aggregate().MergeStall, base.Aggregate().MergeStall)
		}
	})

	t.Run("MP3DIsTheCommunicationStressTest", func(t *testing.T) {
		// MP3D's load-stall fraction must be the highest of all nine.
		frac := func(app string) float64 {
			res, err := s.Run(app, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			_, load, merge, _ := res.Fractions()
			return load + merge
		}
		mp3d := frac("mp3d")
		for _, app := range []string{"lu", "barnes", "fmm", "volrend", "raytrace"} {
			if f := frac(app); f >= mp3d {
				t.Errorf("%s load fraction %.3f ≥ mp3d's %.3f", app, f, mp3d)
			}
		}
	})

	t.Run("WorkingSetOverlapAtSmallCaches", func(t *testing.T) {
		// Figures 4-8: the read-shared applications gain far more from
		// clustering at 4 KB than with infinite caches. (Volrend's test
		// volume fits whole in 4 KB, so the volrend cliff is covered by
		// its own figure at default size rather than here.)
		for _, app := range []string{"barnes", "fmm"} {
			small := rel(app, 4, 4)
			inf := rel(app, 4, 0)
			if small >= inf {
				t.Errorf("%s: 4KB 4-way relative %.3f not better than infinite %.3f",
					app, small, inf)
			}
		}
	})

	t.Run("MissRateInclusionAcrossClustering", func(t *testing.T) {
		// With infinite caches, clustering can only remove misses
		// (prefetching, obviated invalidations), never add them — no
		// destructive interference without capacity limits.
		for _, app := range []string{"ocean", "fft", "barnes"} {
			base, err := s.Run(app, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			clus, err := s.Run(app, 8, 0)
			if err != nil {
				t.Fatal(err)
			}
			b := base.Aggregate()
			c := clus.Aggregate()
			if c.ReadMisses+c.Merges > b.ReadMisses+b.Merges {
				t.Errorf("%s: clustering increased infinite-cache misses %d -> %d",
					app, b.ReadMisses+b.Merges, c.ReadMisses+c.Merges)
			}
		}
	})

	t.Run("CostsWashOutCommunicationGains", func(t *testing.T) {
		// Table 7's LU conclusion: with infinite caches the shared-cache
		// costs make clustering a net loss for LU.
		rows, err := s.CostedData([]string{"lu"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].Relative[4] <= 1.0 {
			t.Errorf("LU 4-way costed relative %.3f; paper says costs make it worse",
				rows[0].Relative[4])
		}
	})
}
