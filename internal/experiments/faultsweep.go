package experiments

import (
	"fmt"

	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/fault"
)

// FaultRow is one cell of the fault-sensitivity study.
type FaultRow struct {
	App          string
	NackPerMille int
	ClusterSize  int
	ExecTime     core.Clock
	Nacks        uint64
	AckDelays    uint64
	FaultCycles  uint64
	Slowdown     float64 // vs the fault-free run, same app and cluster size
}

// ExtFaultApps are the applications swept by the fault study: the
// paper's communication-heavy outlier (mp3d) and its structured near-
// neighbour code (ocean), so both ends of the sharing spectrum face the
// same fault plan.
var ExtFaultApps = []string{"mp3d", "ocean"}

// ExtFaultLevels are the injected fault intensities, in NACKs per
// thousand directory requests; ack-delay and perturbation probabilities
// ride along at the same level. 0 is the fault-free baseline.
var ExtFaultLevels = []int{0, 20, 80}

// ExtFaultClusterSizes contrasts the unclustered machine with 4-way
// clusters: clustering keeps references inside the cluster, off the
// faulty inter-cluster fabric, so its benefit should grow with the
// fault rate.
var ExtFaultClusterSizes = []int{1, 4}

// ExtFaultSeed fixes the fault stream so the table is reproducible.
const ExtFaultSeed = 1

// ExtFaultsData sweeps fault intensity over MP3D and Ocean at 4 KB per
// processor, reporting execution time, absorbed faults and the slowdown
// against the fault-free baseline.
func ExtFaultsData(opt Options) ([]FaultRow, error) {
	var rows []FaultRow
	for _, app := range ExtFaultApps {
		w, err := registry.Lookup(app)
		if err != nil {
			return nil, err
		}
		for _, cs := range ExtFaultClusterSizes {
			var base core.Clock
			for _, level := range ExtFaultLevels {
				cfg := opt.config(cs, 4)
				cfg.Faults = nil // level 0 stays fault-free even under a global -fault-* plan
				if level > 0 {
					cfg.Faults = &fault.Config{
						Seed:             ExtFaultSeed,
						NackPerMille:     level,
						AckDelayPerMille: level,
						PerturbPerMille:  level,
					}
				}
				res, err := w.Run(cfg, opt.Size)
				if err != nil {
					return nil, fmt.Errorf("%s faults=%d‰ cluster=%d: %w", app, level, cs, err)
				}
				if level == 0 {
					base = res.ExecTime
				}
				var nacks, acks, cycles uint64
				for cl := range res.Clusters {
					st := res.Clusters[cl]
					nacks += st.Nacks
					acks += st.AckDelays
					cycles += st.FaultCycles
				}
				rows = append(rows, FaultRow{
					App: app, NackPerMille: level, ClusterSize: cs,
					ExecTime: res.ExecTime, Nacks: nacks, AckDelays: acks, FaultCycles: cycles,
					Slowdown: float64(res.ExecTime) / float64(base),
				})
			}
		}
	}
	return rows, nil
}

// ExtFaults prints the fault-sensitivity study.
func ExtFaults(opt Options) error {
	rows, err := ExtFaultsData(opt)
	if err != nil {
		return err
	}
	w := opt.out()
	fmt.Fprintln(w, "Extension D: Fault Sensitivity of Clustering (deterministic NACK/ack-delay/jitter injection)")
	fmt.Fprintln(w, "(4 KB per processor; fault level is NACKs, delayed acks and jitter per 1000 directory requests)")
	fmt.Fprintf(w, "%-10s %-8s %-6s %12s %10s %10s %12s %10s\n",
		"app", "faults", "clus", "exec cycles", "nacks", "ack-delays", "fault cycles", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %-6s %12d %10d %10d %12d %9.3fx\n",
			r.App, fmt.Sprintf("%d/1000", r.NackPerMille), fmt.Sprintf("%dp", r.ClusterSize),
			r.ExecTime, r.Nacks, r.AckDelays, r.FaultCycles, r.Slowdown)
	}
	fmt.Fprintln(w, "(slowdown vs the fault-free run at the same cluster size; clustering shelters in-cluster traffic from the faulty fabric)")
	return nil
}
