package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"clustersim/internal/core"
	"clustersim/internal/telemetry"
)

// Journal schemas. A point record is one finished simulation result; a
// failure record is one point that panicked or timed out, kept so a
// resumed suite can skip (or, with RetryFailed, re-attempt) it.
const (
	PointSchemaV1   = "clustersim/point/v1"
	FailureSchemaV1 = "clustersim/point-failure/v1"
)

// PointRecord is one journalled simulation point. The key fields (app,
// size, cluster size, cache and config hash) are stored alongside the
// result so a record is self-describing and a resumed suite can verify
// it belongs to the configuration being replayed.
type PointRecord struct {
	Schema      string       `json:"schema"`
	App         string       `json:"app"`
	Size        string       `json:"size"`
	ClusterSize int          `json:"clusterSize"`
	CacheKB     int          `json:"cacheKB"` // 0 = infinite
	ConfigHash  string       `json:"configHash"`
	Result      *core.Result `json:"result"`
}

// FailureRecord marks a point that did not finish: the engine's
// annotated panic text (app, PE id, virtual time) or the watchdog's
// timeout report.
type FailureRecord struct {
	Schema      string `json:"schema"`
	App         string `json:"app"`
	Size        string `json:"size"`
	ClusterSize int    `json:"clusterSize"`
	CacheKB     int    `json:"cacheKB"`
	ConfigHash  string `json:"configHash"`
	Error       string `json:"error"`
}

// Journal is the per-point run journal of a suite: one JSON file per
// simulation point in a state directory, written atomically, keyed by
// (app, size, cluster size, cache, config hash). An interrupted or
// crashed suite resumes by replaying the journalled points and
// simulating only the missing ones; because a Result round-trips
// through JSON losslessly, the resumed suite's tables are byte-
// identical to an uninterrupted run's.
type Journal struct {
	dir string
}

// OpenJournal opens (creating if needed) the journal in dir.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal's state directory.
func (j *Journal) Dir() string { return j.dir }

// pointPath names a point's file. The problem size and the config hash
// are both in the key: size is passed to runners outside the config, so
// the hash alone does not pin it. The hash is truncated for legible
// filenames; the full hash inside the record is what Load verifies.
func (j *Journal) pointPath(app, size string, clusterSize, cacheKB int, hash string) string {
	short := strings.TrimPrefix(hash, "sha256:")
	if len(short) > 12 {
		short = short[:12]
	}
	return filepath.Join(j.dir,
		fmt.Sprintf("%s-%s-c%d-%s-%s.json", app, size, clusterSize, cacheName(cacheKB), short))
}

func (j *Journal) failurePath(app, size string, clusterSize, cacheKB int, hash string) string {
	p := j.pointPath(app, size, clusterSize, cacheKB, hash)
	return strings.TrimSuffix(p, ".json") + ".failed.json"
}

// Store journals one finished point atomically.
func (j *Journal) Store(rec PointRecord) error {
	if rec.Schema == "" {
		rec.Schema = PointSchemaV1
	}
	path := j.pointPath(rec.App, rec.Size, rec.ClusterSize, rec.CacheKB, rec.ConfigHash)
	// Durable, not merely atomic: the journal is what a crashed worker
	// or suite resumes from, so the record must survive power loss —
	// file data is fsynced before the rename and the directory entry
	// after it. See "Crash consistency" in DESIGN.md §8.
	err := telemetry.AtomicFileDurable(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(rec)
	})
	if err != nil {
		return fmt.Errorf("journal: store %s: %w", filepath.Base(path), err)
	}
	// A success supersedes any earlier failure of the same point (e.g. a
	// RetryFailed re-run after a watchdog abort).
	os.Remove(j.failurePath(rec.App, rec.Size, rec.ClusterSize, rec.CacheKB, rec.ConfigHash))
	return nil
}

// Load replays one journalled point. ok is false when the point has not
// been journalled (or the file belongs to a different configuration);
// an unreadable or mismatched record is an error, not a silent re-run,
// so corrupted state directories surface instead of quietly forking the
// experiment.
func (j *Journal) Load(app, size string, clusterSize, cacheKB int, hash string) (*core.Result, bool, error) {
	path := j.pointPath(app, size, clusterSize, cacheKB, hash)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("journal: %w", err)
	}
	var rec PointRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, false, fmt.Errorf("journal: corrupt record %s: %w", filepath.Base(path), err)
	}
	if rec.Schema != PointSchemaV1 {
		return nil, false, fmt.Errorf("journal: %s: unknown schema %q", filepath.Base(path), rec.Schema)
	}
	if rec.ConfigHash != hash || rec.App != app || rec.Size != size ||
		rec.ClusterSize != clusterSize || rec.CacheKB != cacheKB {
		return nil, false, fmt.Errorf("journal: %s does not match the requested point (recorded %s %s c%d %s %s)",
			filepath.Base(path), rec.App, rec.Size, rec.ClusterSize, cacheName(rec.CacheKB), rec.ConfigHash)
	}
	if rec.Result == nil {
		return nil, false, fmt.Errorf("journal: %s has no result", filepath.Base(path))
	}
	return rec.Result, true, nil
}

// StoreFailure journals one failed point atomically.
func (j *Journal) StoreFailure(rec FailureRecord) error {
	if rec.Schema == "" {
		rec.Schema = FailureSchemaV1
	}
	path := j.failurePath(rec.App, rec.Size, rec.ClusterSize, rec.CacheKB, rec.ConfigHash)
	err := telemetry.AtomicFileDurable(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	})
	if err != nil {
		return fmt.Errorf("journal: store failure %s: %w", filepath.Base(path), err)
	}
	return nil
}

// LoadFailure replays one journalled failure, if any.
func (j *Journal) LoadFailure(app, size string, clusterSize, cacheKB int, hash string) (*FailureRecord, bool, error) {
	path := j.failurePath(app, size, clusterSize, cacheKB, hash)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("journal: %w", err)
	}
	var rec FailureRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, false, fmt.Errorf("journal: corrupt failure record %s: %w", filepath.Base(path), err)
	}
	if rec.Schema != FailureSchemaV1 {
		return nil, false, fmt.Errorf("journal: %s: unknown schema %q", filepath.Base(path), rec.Schema)
	}
	return &rec, true, nil
}
