package experiments

import (
	"strings"
	"testing"

	"clustersim/internal/apps"
)

// quickOpts is a small machine at test problem sizes so the whole
// experiment pipeline runs in seconds.
func quickOpts(buf *strings.Builder) Options {
	return Options{Procs: 8, Size: apps.SizeTest, Out: buf}
}

func TestSuiteMemoizes(t *testing.T) {
	var buf strings.Builder
	s := NewSuite(quickOpts(&buf))
	a, err := s.Run("lu", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("lu", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("suite re-simulated a memoized point")
	}
}

func TestFig2DataShape(t *testing.T) {
	var buf strings.Builder
	s := NewSuite(quickOpts(&buf))
	bars, err := s.Fig2Data()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != len(Fig2Apps)*len(ClusterSizes) {
		t.Fatalf("got %d bars", len(bars))
	}
	for _, b := range bars {
		if b.ClusterSize == 1 && (b.Total < 99.99 || b.Total > 100.01) {
			t.Errorf("%s 1p bar = %.2f, want 100", b.App, b.Total)
		}
		if b.Total <= 0 {
			t.Errorf("%s %dp: nonpositive bar", b.App, b.ClusterSize)
		}
		sum := b.CPU + b.Load + b.Merge + b.Sync
		if sum < b.Total*0.999 || sum > b.Total*1.001 {
			t.Errorf("%s %dp: segments %.2f do not stack to %.2f", b.App, b.ClusterSize, sum, b.Total)
		}
	}
}

func TestFig2Prints(t *testing.T) {
	var buf strings.Builder
	if err := Fig2(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, app := range Fig2Apps {
		if !strings.Contains(out, app) {
			t.Errorf("figure 2 output missing %s", app)
		}
	}
}

func TestFig3Prints(t *testing.T) {
	var buf strings.Builder
	opt := quickOpts(&buf)
	// Figure 3 halves Ocean's grid; at SizeTest that would be below the
	// minimum, so run it at default size on the small machine.
	opt.Size = apps.SizeDefault
	if err := Fig3(opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ocean-small") {
		t.Error("figure 3 output missing bars")
	}
}

func TestFigFinite(t *testing.T) {
	var buf strings.Builder
	if err := FigFinite(quickOpts(&buf), 7); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fmm") || !strings.Contains(out, "inf") {
		t.Errorf("figure 7 output incomplete:\n%s", out)
	}
	if err := FigFinite(quickOpts(&buf), 9); err == nil {
		t.Error("want error for unknown figure")
	}
}

func TestTables124Print(t *testing.T) {
	var buf strings.Builder
	opt := quickOpts(&buf)
	if err := Table1(opt); err != nil {
		t.Fatal(err)
	}
	if err := Table2(opt); err != nil {
		t.Fatal(err)
	}
	if err := Table4(opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"150", "512-by-512", "0.199"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
}

func TestTable3WorkingSets(t *testing.T) {
	var buf strings.Builder
	s := NewSuite(quickOpts(&buf))
	rows, err := s.Table3Data()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Miss rate must be non-increasing in cache size (fully
		// associative LRU has the inclusion property).
		prev := 2.0
		for _, kb := range WorkingSetSweepKB {
			mr := r.MissRateAtKB[kb]
			if mr > prev+1e-9 {
				t.Errorf("%s: miss rate rose from %.5f to %.5f at %dKB", r.App, prev, mr, kb)
			}
			prev = mr
		}
		if r.InfMissRate > prev+1e-9 {
			t.Errorf("%s: infinite-cache rate above 64KB rate", r.App)
		}
	}
}

func TestTable5FactorsBand(t *testing.T) {
	var buf strings.Builder
	s := NewSuite(quickOpts(&buf))
	rows, err := s.Table5Data()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Factors[0] != 1 {
			t.Errorf("%s: 1-cycle factor %v", r.App, r.Factors[0])
		}
		// The paper's band at 4 cycles is 1.12-1.25; allow slack for the
		// tiny test problems.
		if r.Factors[3] < 1.01 || r.Factors[3] > 1.6 {
			t.Errorf("%s: 4-cycle factor %.3f outside plausible band", r.App, r.Factors[3])
		}
		if !(r.Factors[0] < r.Factors[1] && r.Factors[1] < r.Factors[2] && r.Factors[2] < r.Factors[3]) {
			t.Errorf("%s: factors not increasing: %v", r.App, r.Factors)
		}
	}
}

func TestTables67(t *testing.T) {
	var buf strings.Builder
	opt := quickOpts(&buf)
	if err := Table6(opt); err != nil {
		t.Fatal(err)
	}
	if err := Table7(opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, app := range append(append([]string{}, Table6Apps...), Table7Apps...) {
		if !strings.Contains(out, app) {
			t.Errorf("costed tables missing %s", app)
		}
	}
}

// TestCostedOneWayIsUnity: the 1-way cluster is the base, so its costed
// relative time must be exactly 1.
func TestCostedOneWayIsUnity(t *testing.T) {
	var buf strings.Builder
	s := NewSuite(quickOpts(&buf))
	rows, err := s.CostedData([]string{"lu"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].Relative[1]; got < 0.999 || got > 1.001 {
		t.Fatalf("1-way relative = %v, want 1.0", got)
	}
}
