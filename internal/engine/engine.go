// Package engine implements the deterministic discrete-event core of the
// clustered-multiprocessor simulator, in the style of Tango-lite: every
// simulated processor runs its workload on its own goroutine, but exactly
// one goroutine executes at any instant. The token of execution is handed
// directly from processor to processor so that references to the shared
// memory-system model are always performed in global virtual-time order.
//
// The scheduling invariant is: the running processor may only perform an
// event while its virtual clock is within Quantum cycles of the minimum
// clock over all other runnable processors. With Quantum = 0 (the default)
// event ordering is exact; larger values trade bounded timing skew for
// fewer goroutine handoffs on large parameter sweeps.
//
// Ties in virtual time are broken by processor ID, so simulations are
// bit-reproducible.
package engine

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// Clock counts simulated processor cycles.
type Clock = int64

type runState uint8

const (
	stateReady    runState = iota // in the ready heap, waiting for the token
	stateRunning                  // holds the token
	stateBlocked                  // parked on a synchronisation object
	stateFinished                 // kernel returned
)

type tokenMsg struct{ abort bool }

// Probe observes scheduler-internal events: it is the engine half of the
// telemetry layer. All callbacks arrive from the goroutine holding the
// execution token, in global virtual-time order, so implementations need
// no locking. A nil probe costs one predictable branch per handoff.
type Probe interface {
	// Handoff fires every time the execution token changes hands. from
	// is the yielding processor (-1 for the initial dispatch), to the
	// resuming one; fromTime and toTime are their virtual clocks and
	// readyDepth is the ready-heap population after the pop. The skew
	// fromTime-toTime is the quantum slack actually exploited.
	Handoff(from, to int, fromTime, toTime Clock, readyDepth int)
}

// Timer observes where the host's wall-clock time goes — the engine
// half of the perf monitor. EnterSched fires when the running goroutine
// begins token-handoff machinery (heap maintenance, the channel send
// and the goroutine switch it triggers); EnterApp fires when a PE
// resumes application execution after receiving the token. Exactly one
// goroutine executes at a time, so calls arrive strictly ordered and
// implementations need no locking. A nil timer costs one predictable
// branch per handoff.
type Timer interface {
	EnterSched()
	EnterApp()
}

// abortPanic unwinds a processor goroutine during simulation shutdown.
type abortPanic struct{}

// PE is a simulated processing element. All of its methods must be called
// only from the goroutine running that PE's kernel, while it holds the
// execution token; the Scheduler enforces this by construction.
type PE struct {
	id      int
	sched   *Scheduler
	time    Clock
	state   runState
	token   chan tokenMsg
	heapIdx int
	reason  string // why blocked, for deadlock reports
}

// ID returns the processor number, in [0, NumPE).
func (pe *PE) ID() int { return pe.id }

// Now returns the processor's virtual clock in cycles.
func (pe *PE) Now() Clock { return pe.time }

// Advance moves the processor's virtual clock forward without yielding.
// Callers that generate shared events must call Yield before acting on
// shared state.
func (pe *PE) Advance(cycles Clock) {
	if cycles < 0 {
		panic(fmt.Sprintf("engine: PE %d advanced by negative %d cycles", pe.id, cycles))
	}
	pe.time += cycles
}

// SetTime warps the processor's clock forward to at (never backward).
func (pe *PE) SetTime(at Clock) {
	if at > pe.time {
		pe.time = at
	}
}

// Yield hands the execution token to other processors until this PE's
// clock is within the scheduler's quantum of the minimum runnable clock.
// It must be called before every event that touches shared simulator
// state, so that such events occur in virtual-time order.
func (pe *PE) Yield() {
	s := pe.sched
	for len(s.heap) > 0 && s.heap[0].time+s.quantum < pe.time {
		if s.timer != nil {
			s.timer.EnterSched()
		}
		pe.state = stateReady
		s.heapPush(pe)
		next := s.heapPopMin()
		next.state = stateRunning
		if s.probe != nil {
			s.probe.Handoff(pe.id, next.id, pe.time, next.time, len(s.heap))
		}
		next.token <- tokenMsg{}
		pe.wait()
	}
}

// Block parks the processor until another processor calls Unblock on it.
// The reason string appears in deadlock reports. Time accounting for the
// wait is the caller's responsibility (see Unblock).
func (pe *PE) Block(reason string) {
	pe.state = stateBlocked
	pe.reason = reason
	pe.sched.dispatchNext(pe)
	pe.wait()
	pe.reason = ""
}

// Unblock resumes target, which must be blocked, setting its clock to at
// if that is later than its current clock. The caller keeps running; the
// target becomes runnable and receives the token when its clock is
// globally minimal.
func (pe *PE) Unblock(target *PE, at Clock) {
	if target.state != stateBlocked {
		panic(fmt.Sprintf("engine: PE %d unblocked PE %d which is not blocked", pe.id, target.id))
	}
	target.SetTime(at)
	target.state = stateReady
	pe.sched.heapPush(target)
}

// Fail aborts the whole simulation with err. It does not return.
func (pe *PE) Fail(err error) {
	pe.sched.fail(err)
}

// wait parks until the token arrives, unwinding on abort. Receiving the
// token resumes application execution, which is where the handoff span
// opened by EnterSched ends.
func (pe *PE) wait() {
	msg := <-pe.token
	if msg.abort {
		panic(abortPanic{})
	}
	if pe.sched.timer != nil {
		pe.sched.timer.EnterApp()
	}
}

// Scheduler owns the processors of one simulation run.
type Scheduler struct {
	pes       []*PE
	heap      []*PE
	quantum   Clock
	nFinished int
	probe     Probe
	timer     Timer
	label     string // workload name, for panic diagnostics
	err       error
	mu        sync.Mutex // guards err on the kernel-panic path only
}

// NewScheduler creates a scheduler for n processors with the given
// event-ordering slack (0 = exact ordering).
func NewScheduler(n int, quantum Clock) *Scheduler {
	if n <= 0 {
		panic("engine: scheduler needs at least one processor")
	}
	if quantum < 0 {
		panic("engine: negative quantum")
	}
	s := &Scheduler{quantum: quantum}
	s.pes = make([]*PE, n)
	for i := range s.pes {
		s.pes[i] = &PE{id: i, sched: s, token: make(chan tokenMsg, 1), heapIdx: -1}
	}
	return s
}

// NumPE returns the number of processors.
func (s *Scheduler) NumPE() int { return len(s.pes) }

// PEs returns the processors, indexed by ID. Intended for wiring up the
// layer above before Run is called.
func (s *Scheduler) PEs() []*PE { return s.pes }

// SetProbe attaches a telemetry probe; call before Run. A nil probe
// (the default) disables observation entirely.
func (s *Scheduler) SetProbe(p Probe) { s.probe = p }

// SetTimer attaches a wall-clock phase timer; call before Run. A nil
// timer (the default) disables host-time attribution entirely.
func (s *Scheduler) SetTimer(t Timer) { s.timer = t }

// SetLabel names the workload for panic diagnostics; call before Run.
// An empty label (the default) reports as "unnamed".
func (s *Scheduler) SetLabel(label string) { s.label = label }

func (s *Scheduler) labelOrDefault() string {
	if s.label == "" {
		return "unnamed"
	}
	return s.label
}

// Run executes kernel once per processor, each on its own goroutine, and
// returns when every kernel has finished or the simulation has failed.
// It returns the first error (kernel panic, deadlock, or Fail call).
func (s *Scheduler) Run(kernel func(*PE)) error {
	var wg sync.WaitGroup
	for _, pe := range s.pes {
		pe.state = stateReady
		s.heapPush(pe)
	}
	for _, pe := range s.pes {
		wg.Add(1)
		go func(pe *PE) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); ok {
						return
					}
					// Annotate with the crash site's simulation coordinates
					// (workload, PE, virtual time) so a failure is
					// diagnosable — and, with a seeded fault plan,
					// replayable — from the error alone.
					s.failFromPanic(fmt.Errorf("engine: app %q: processor %d panicked at virtual time %d: %v\n%s",
						s.labelOrDefault(), pe.id, pe.time, r, debug.Stack()))
				}
			}()
			pe.wait()
			kernel(pe)
			s.finish(pe)
		}(pe)
	}
	if s.timer != nil {
		s.timer.EnterSched() // initial dispatch is scheduling work
	}
	first := s.heapPopMin()
	first.state = stateRunning
	if s.probe != nil {
		s.probe.Handoff(-1, first.id, 0, first.time, len(s.heap))
	}
	first.token <- tokenMsg{}
	wg.Wait()
	return s.err
}

// Times returns the final virtual clock of every processor.
func (s *Scheduler) Times() []Clock {
	out := make([]Clock, len(s.pes))
	for i, pe := range s.pes {
		out[i] = pe.time
	}
	return out
}

// finish marks the running PE's kernel as complete and hands the token on.
func (s *Scheduler) finish(pe *PE) {
	pe.state = stateFinished
	s.nFinished++
	s.dispatchNext(pe)
}

// dispatchNext passes the token to the minimum-clock runnable processor.
// If none is runnable and not all have finished, the simulation is
// deadlocked. The caller's goroutine keeps running (it is finishing or
// about to park in wait).
func (s *Scheduler) dispatchNext(from *PE) {
	if s.timer != nil {
		s.timer.EnterSched()
	}
	if len(s.heap) > 0 {
		next := s.heapPopMin()
		next.state = stateRunning
		if s.probe != nil {
			s.probe.Handoff(from.id, next.id, from.time, next.time, len(s.heap))
		}
		next.token <- tokenMsg{}
		return
	}
	if s.nFinished == len(s.pes) {
		return // clean completion: every goroutine exits on its own
	}
	s.fail(s.deadlockError())
}

func (s *Scheduler) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: deadlock: %d finished, blocked processors:", s.nFinished)
	ids := make([]int, 0, len(s.pes))
	for _, pe := range s.pes {
		if pe.state == stateBlocked {
			ids = append(ids, pe.id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		pe := s.pes[id]
		fmt.Fprintf(&b, "\n  PE %d at cycle %d: %s", id, pe.time, pe.reason)
	}
	return fmt.Errorf("%s", b.String())
}

// fail records err, aborts every other live processor, and unwinds the
// calling goroutine. It does not return.
func (s *Scheduler) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.abortOthers()
	panic(abortPanic{})
}

// failFromPanic is fail for the recover path, where we must not re-panic.
func (s *Scheduler) failFromPanic(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.abortOthers()
}

func (s *Scheduler) abortOthers() {
	for _, pe := range s.pes {
		if pe.state == stateRunning || pe.state == stateFinished {
			continue
		}
		pe.token <- tokenMsg{abort: true}
	}
}

// --- ready heap, ordered by (time, id) --------------------------------

func peLess(a, b *PE) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.id < b.id
}

func (s *Scheduler) heapPush(pe *PE) {
	s.heap = append(s.heap, pe)
	i := len(s.heap) - 1
	pe.heapIdx = i
	for i > 0 {
		parent := (i - 1) / 2
		if !peLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Scheduler) heapPopMin() *PE {
	min := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[0].heapIdx = 0
	s.heap = s.heap[:last]
	min.heapIdx = -1
	s.siftDown(0)
	return min
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && peLess(s.heap[left], s.heap[smallest]) {
			smallest = left
		}
		if right < n && peLess(s.heap[right], s.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		s.heapSwap(i, smallest)
		i = smallest
	}
}

func (s *Scheduler) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].heapIdx = i
	s.heap[j].heapIdx = j
}
