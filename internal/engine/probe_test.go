package engine

import "testing"

// countingProbe records every handoff for assertions.
type countingProbe struct {
	handoffs  []int // resuming PE ids, in order
	maxDepth  int
	maxSkew   Clock
	sawInit   bool
	fromTimes []Clock
}

func (p *countingProbe) Handoff(from, to int, fromTime, toTime Clock, depth int) {
	if from == -1 {
		p.sawInit = true
	}
	p.handoffs = append(p.handoffs, to)
	p.fromTimes = append(p.fromTimes, fromTime)
	if depth > p.maxDepth {
		p.maxDepth = depth
	}
	if skew := fromTime - toTime; skew > p.maxSkew {
		p.maxSkew = skew
	}
}

// TestProbeObservesHandoffs: the probe sees the initial dispatch and
// every token handoff, in virtual-time order.
func TestProbeObservesHandoffs(t *testing.T) {
	s := NewScheduler(4, 0)
	probe := &countingProbe{}
	s.SetProbe(probe)
	err := s.Run(func(pe *PE) {
		for i := 0; i < 3; i++ {
			pe.Advance(10)
			pe.Yield()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !probe.sawInit {
		t.Error("probe missed the initial dispatch")
	}
	// 4 PEs × 3 yields forces interleaving: well more than the initial
	// dispatch must be observed.
	if len(probe.handoffs) < 8 {
		t.Errorf("observed %d handoffs, expected several", len(probe.handoffs))
	}
	if probe.maxDepth < 1 || probe.maxDepth > 3 {
		t.Errorf("maxDepth = %d, want within [1,3]", probe.maxDepth)
	}
	// Exact ordering: the yielding PE is never more than one event
	// ahead, so skew stays small and non-negative on Yield handoffs.
	if probe.maxSkew < 0 {
		t.Errorf("negative skew %d", probe.maxSkew)
	}
}

// TestProbeObservesBlockHandoffs: dispatch after Block/finish also
// reports to the probe.
func TestProbeObservesBlockHandoffs(t *testing.T) {
	s := NewScheduler(2, 0)
	probe := &countingProbe{}
	s.SetProbe(probe)
	pes := s.PEs()
	err := s.Run(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Advance(5)
			pe.Block("waiting for P1")
		} else {
			pe.Advance(50)
			pe.Yield()
			pe.Unblock(pes[0], pe.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.handoffs) < 3 {
		t.Errorf("observed %d handoffs, want >= 3", len(probe.handoffs))
	}
}

// TestNilProbeUnchanged: without a probe the scheduler behaves exactly
// as before (bit-reproducible times).
func TestNilProbeUnchanged(t *testing.T) {
	run := func(probe Probe) []Clock {
		s := NewScheduler(3, 0)
		if probe != nil {
			s.SetProbe(probe)
		}
		if err := s.Run(func(pe *PE) {
			pe.Advance(Clock(pe.ID()+1) * 7)
			pe.Yield()
			pe.Advance(13)
		}); err != nil {
			t.Fatal(err)
		}
		return s.Times()
	}
	bare, probed := run(nil), run(&countingProbe{})
	for i := range bare {
		if bare[i] != probed[i] {
			t.Fatalf("probe changed timing: %v vs %v", bare, probed)
		}
	}
}
