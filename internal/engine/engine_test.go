package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSinglePERunsToCompletion(t *testing.T) {
	s := NewScheduler(1, 0)
	err := s.Run(func(pe *PE) {
		pe.Advance(100)
		pe.Yield()
		pe.Advance(23)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := s.Times()[0]; got != 123 {
		t.Fatalf("final time = %d, want 123", got)
	}
}

// TestEventOrderExact checks that with Quantum=0 shared events are observed
// in nondecreasing virtual-time order, with ties broken by PE id.
func TestEventOrderExact(t *testing.T) {
	type ev struct {
		time Clock
		id   int
	}
	var log []ev
	s := NewScheduler(4, 0)
	err := s.Run(func(pe *PE) {
		r := rand.New(rand.NewSource(int64(pe.ID()) + 7))
		for i := 0; i < 200; i++ {
			pe.Advance(Clock(r.Intn(20)))
			pe.Yield()
			log = append(log, ev{pe.Now(), pe.ID()})
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(log) != 800 {
		t.Fatalf("got %d events, want 800", len(log))
	}
	for i := 1; i < len(log); i++ {
		a, b := log[i-1], log[i]
		if a.time > b.time {
			t.Fatalf("event %d at time %d after event %d at time %d", i, b.time, i-1, a.time)
		}
	}
}

// TestQuantumBoundsSkew checks that with Quantum=q an event is never more
// than q cycles ahead of the minimum runnable clock at the instant it runs.
func TestQuantumBoundsSkew(t *testing.T) {
	const q = 50
	s := NewScheduler(3, q)
	bad := 0
	err := s.Run(func(pe *PE) {
		r := rand.New(rand.NewSource(int64(pe.ID())))
		for i := 0; i < 300; i++ {
			pe.Advance(Clock(r.Intn(10)))
			pe.Yield()
			// At this point every heap entry must be >= pe.time - q.
			for _, other := range pe.sched.heap {
				if other.time+q < pe.Now() {
					bad++
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bad != 0 {
		t.Fatalf("%d events ran more than quantum ahead", bad)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		var b strings.Builder
		s := NewScheduler(8, 0)
		err := s.Run(func(pe *PE) {
			r := rand.New(rand.NewSource(int64(pe.ID()) * 31))
			for i := 0; i < 100; i++ {
				pe.Advance(Clock(r.Intn(13)))
				pe.Yield()
				fmt.Fprintf(&b, "%d@%d;", pe.ID(), pe.Now())
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("two identical runs produced different event orders")
	}
}

func TestBlockUnblock(t *testing.T) {
	s := NewScheduler(2, 0)
	pes := s.PEs()
	var order []string
	err := s.Run(func(pe *PE) {
		if pe.ID() == 0 {
			order = append(order, "block0")
			pe.Block("waiting for PE 1")
			order = append(order, "resumed0")
			if pe.Now() != 500 {
				t.Errorf("PE0 resumed at %d, want 500", pe.Now())
			}
		} else {
			pe.Advance(500)
			pe.Yield()
			order = append(order, "unblock1")
			pe.Unblock(pes[0], pe.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "block0,unblock1,resumed0"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestUnblockNeverMovesClockBackward(t *testing.T) {
	s := NewScheduler(2, 0)
	pes := s.PEs()
	err := s.Run(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Advance(1000) // blocked PE already ahead of the release time
			pe.Yield()
			pe.Block("wait")
			if pe.Now() != 1000 {
				t.Errorf("clock moved backward to %d", pe.Now())
			}
		} else {
			pe.Advance(2000) // ensure PE0 blocks first
			pe.Yield()
			pe.Unblock(pes[0], 10)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := NewScheduler(3, 0)
	err := s.Run(func(pe *PE) {
		pe.Block(fmt.Sprintf("lock L%d", pe.ID()))
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	for i := 0; i < 3; i++ {
		if !strings.Contains(err.Error(), fmt.Sprintf("lock L%d", i)) {
			t.Errorf("deadlock report missing PE %d reason: %v", i, err)
		}
	}
}

func TestPartialFinishThenDeadlock(t *testing.T) {
	s := NewScheduler(2, 0)
	err := s.Run(func(pe *PE) {
		if pe.ID() == 0 {
			return // finishes immediately
		}
		pe.Block("never released")
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestKernelPanicPropagates(t *testing.T) {
	s := NewScheduler(4, 0)
	err := s.Run(func(pe *PE) {
		if pe.ID() == 2 {
			panic("boom")
		}
		pe.Advance(10)
		pe.Yield()
		pe.Block("will be aborted")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want panic error, got %v", err)
	}
	if !strings.Contains(err.Error(), "processor 2") {
		t.Fatalf("error should name processor 2: %v", err)
	}
}

// TestKernelPanicAnnotated requires that a kernel panic is reported
// with the crash site's full simulation coordinates: the workload
// label, the PE id and the PE's virtual time at the panic — enough to
// replay a seeded failure from the error text alone.
func TestKernelPanicAnnotated(t *testing.T) {
	s := NewScheduler(4, 0)
	s.SetLabel("ocean")
	err := s.Run(func(pe *PE) {
		pe.Advance(123)
		pe.Yield()
		if pe.ID() == 3 {
			panic("boom")
		}
		pe.Block("will be aborted")
	})
	if err == nil {
		t.Fatal("want panic error")
	}
	for _, want := range []string{`app "ocean"`, "processor 3", "virtual time 123", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

// TestKernelPanicUnlabeled: without a label the annotation falls back
// to "unnamed" rather than an empty string.
func TestKernelPanicUnlabeled(t *testing.T) {
	s := NewScheduler(1, 0)
	err := s.Run(func(pe *PE) { panic("bang") })
	if err == nil || !strings.Contains(err.Error(), `app "unnamed"`) {
		t.Fatalf("want unnamed-app annotation, got %v", err)
	}
}

func TestFailAborts(t *testing.T) {
	sentinel := errors.New("app-level failure")
	s := NewScheduler(4, 0)
	err := s.Run(func(pe *PE) {
		if pe.ID() == 1 {
			pe.Fail(sentinel)
		}
		pe.Block("parked")
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	s := NewScheduler(1, 0)
	err := s.Run(func(pe *PE) { pe.Advance(-1) })
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("want negative-advance error, got %v", err)
	}
}

func TestFinishWakesRemaining(t *testing.T) {
	// PE0 finishes early; PE1 and PE2 must keep running to completion.
	var done int32
	s := NewScheduler(3, 0)
	err := s.Run(func(pe *PE) {
		if pe.ID() == 0 {
			return
		}
		for i := 0; i < 50; i++ {
			pe.Advance(3)
			pe.Yield()
		}
		atomic.AddInt32(&done, 1)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
}

// TestHeapOrderingProperty drives the ready heap directly with random
// push/pop sequences and checks it always yields the (time, id) minimum.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		if len(times) > 64 {
			times = times[:64]
		}
		s := NewScheduler(len(times), 0)
		for i, tm := range times {
			s.pes[i].time = Clock(tm)
			s.heapPush(s.pes[i])
		}
		type key struct {
			time Clock
			id   int
		}
		var got []key
		for len(s.heap) > 0 {
			pe := s.heapPopMin()
			got = append(got, key{pe.time, pe.id})
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].time != got[j].time {
				return got[i].time < got[j].time
			}
			return got[i].id < got[j].id
		}) {
			return false
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetTimeOnlyForward(t *testing.T) {
	s := NewScheduler(1, 0)
	err := s.Run(func(pe *PE) {
		pe.Advance(100)
		pe.SetTime(50) // must not move backward
		if pe.Now() != 100 {
			t.Errorf("SetTime moved clock backward to %d", pe.Now())
		}
		pe.SetTime(200)
		if pe.Now() != 200 {
			t.Errorf("SetTime failed to move forward, now %d", pe.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestUnblockNonBlockedPanics(t *testing.T) {
	s := NewScheduler(2, 0)
	pes := s.PEs()
	err := s.Run(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Advance(10)
			pe.Yield()
			// PE 1 is ready (not blocked): Unblock must panic, which the
			// engine surfaces as a run error.
			pe.Unblock(pes[1], 20)
		} else {
			pe.Advance(100)
			pe.Yield()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "not blocked") {
		t.Fatalf("want unblock-misuse error, got %v", err)
	}
}

func TestSchedulerConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewScheduler(0, 0) },
		func() { NewScheduler(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid arguments")
				}
			}()
			f()
		}()
	}
}
