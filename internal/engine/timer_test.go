package engine

import "testing"

// countingTimer records phase entries; it lives entirely on the token
// discipline, so plain counters suffice (the race detector verifies the
// happens-before edges in `make race`).
type countingTimer struct {
	sched, app int
	// trace records the order of entries: 's' or 'a'.
	trace []byte
}

func (t *countingTimer) EnterSched() { t.sched++; t.trace = append(t.trace, 's') }
func (t *countingTimer) EnterApp()   { t.app++; t.trace = append(t.trace, 'a') }

// yieldKernel does a few advance/yield rounds so tokens actually change
// hands between the processors.
func yieldKernel(pe *PE) {
	for i := 0; i < 5; i++ {
		pe.Advance(Clock(1 + pe.ID()))
		pe.Yield()
	}
}

// TestTimerPairing: every application span is opened by exactly one
// EnterApp, every handoff by exactly one EnterSched, and the trace
// strictly alternates — the tiling property the perf monitor's phase
// attribution rests on.
func TestTimerPairing(t *testing.T) {
	s := NewScheduler(4, 0)
	ct := &countingTimer{}
	s.SetTimer(ct)
	if err := s.Run(yieldKernel); err != nil {
		t.Fatal(err)
	}
	if ct.sched == 0 || ct.app == 0 {
		t.Fatalf("timer never fired: sched=%d app=%d", ct.sched, ct.app)
	}
	// Every app resume is preceded by a sched entry; the final entry is
	// the last finisher's dispatchNext, which finds nothing to run.
	for i, c := range ct.trace {
		if c == 'a' && (i == 0 || ct.trace[i-1] != 's') {
			t.Fatalf("EnterApp at %d not preceded by EnterSched: %s", i, ct.trace)
		}
	}
	if ct.sched != ct.app+1 {
		t.Errorf("sched entries = %d, app entries = %d; want sched = app+1 (trailing clean-completion dispatch)",
			ct.sched, ct.app)
	}
}

// TestTimerDeterministic: two identical runs see the identical entry
// sequence — the engine half of the monitor's determinism guarantee.
func TestTimerDeterministic(t *testing.T) {
	run := func() []byte {
		s := NewScheduler(8, 0)
		ct := &countingTimer{}
		s.SetTimer(ct)
		if err := s.Run(yieldKernel); err != nil {
			t.Fatal(err)
		}
		return ct.trace
	}
	first, second := run(), run()
	if string(first) != string(second) {
		t.Errorf("timer traces differ across identical runs:\n run 1: %s\n run 2: %s", first, second)
	}
}

// TestTimerNilIsDefault: a scheduler without a timer still runs (the
// hot paths gate on the nil check alone).
func TestTimerNilIsDefault(t *testing.T) {
	s := NewScheduler(2, 0)
	if err := s.Run(yieldKernel); err != nil {
		t.Fatal(err)
	}
}
