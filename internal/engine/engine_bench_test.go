package engine

import "testing"

// BenchmarkYieldHandoff measures raw token-handoff throughput: two
// processors forced to alternate every event — the engine's worst case.
func BenchmarkYieldHandoff(b *testing.B) {
	s := NewScheduler(2, 0)
	n := b.N
	err := s.Run(func(pe *PE) {
		for i := 0; i < n; i++ {
			pe.Advance(1)
			pe.Yield()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(2*n)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkYield64 measures scheduling across a full 64-processor
// machine with skewed advance amounts (amortised handoffs).
func BenchmarkYield64(b *testing.B) {
	s := NewScheduler(64, 0)
	n := b.N
	err := s.Run(func(pe *PE) {
		step := Clock(1 + pe.ID()%7)
		for i := 0; i < n; i++ {
			pe.Advance(step)
			pe.Yield()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(64*n)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkQuantum64 shows the quantum's effect on handoff counts.
func BenchmarkQuantum64(b *testing.B) {
	s := NewScheduler(64, 100)
	n := b.N
	err := s.Run(func(pe *PE) {
		step := Clock(1 + pe.ID()%7)
		for i := 0; i < n; i++ {
			pe.Advance(step)
			pe.Yield()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(64*n)/b.Elapsed().Seconds(), "events/s")
}
