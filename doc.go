// Package clustersim reproduces "The Benefits of Clustering in Shared
// Address Space Multiprocessors: An Applications-Driven Investigation"
// (Erlichson, Nayfeh, Singh, Olukotun — Stanford CSL-TR-94-632 / SC'95)
// as a self-contained Go library.
//
// The system is an execution-driven simulator of a 64-processor shared
// address space machine whose processors share cluster caches of 1, 2, 4
// or 8 processors, kept coherent by a full-bit-vector directory with
// replacement hints, plus the paper's nine SPLASH-era applications
// (Barnes, FFT, FMM, LU, MP3D, Ocean, Radix, Raytrace, Volrend) and the
// analytic shared-cache cost model of its Section 6.
//
// Entry points:
//
//   - internal/core — the simulator's public API (Machine, Proc, Config).
//   - internal/apps/... — the applications, each independently verified.
//   - internal/experiments — regenerates every table and figure.
//   - cmd/clustersim, cmd/experiments — command-line front ends.
//   - examples/ — runnable walkthroughs of the paper's mechanisms.
//
// The benchmarks in bench_test.go regenerate each table and figure at a
// reduced scale; see EXPERIMENTS.md for paper-versus-measured results.
package clustersim
