// Benchmarks regenerating every table and figure of the paper at reduced
// scale (16 simulated processors, test-size problems), plus ablation
// benchmarks for the design choices called out in DESIGN.md. Each
// benchmark reports the simulated execution time of the final
// configuration it ran as "simcycles" next to the wall-clock figures.
//
// The full-size tables and figures are produced by cmd/experiments; see
// EXPERIMENTS.md for paper-versus-measured values.
package clustersim_test

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/cache"
	"clustersim/internal/contention"
	"clustersim/internal/core"
	"clustersim/internal/experiments"
	"clustersim/internal/memory"
)

const benchProcs = 16

func benchOpts() experiments.Options {
	return experiments.Options{Procs: benchProcs, Size: apps.SizeTest}
}

func benchConfig(clusterSize, cacheKB int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = benchProcs
	cfg.ClusterSize = clusterSize
	cfg.CacheKBPerProc = cacheKB
	return cfg
}

// runPoint simulates one (app, cluster, cache) point and fails the
// benchmark on any verification error.
func runPoint(b *testing.B, app string, clusterSize, cacheKB int) *core.Result {
	b.Helper()
	w, err := registry.Lookup(app)
	if err != nil {
		b.Fatal(err)
	}
	res, err := w.Run(benchConfig(clusterSize, cacheKB), apps.SizeTest)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- figures ------------------------------------------------------------

// BenchmarkFig2Infinite regenerates one application's Figure 2 panel:
// infinite caches across cluster sizes 1, 2, 4, 8.
func BenchmarkFig2Infinite(b *testing.B) {
	for _, app := range experiments.Fig2Apps {
		app := app
		b.Run(app, func(b *testing.B) {
			var last *core.Result
			for i := 0; i < b.N; i++ {
				for _, cs := range experiments.ClusterSizes {
					last = runPoint(b, app, cs, 0)
				}
			}
			b.ReportMetric(float64(last.ExecTime), "simcycles")
		})
	}
}

// BenchmarkFig3OceanSmall regenerates Figure 3: Ocean at half the grid.
func BenchmarkFig3OceanSmall(b *testing.B) {
	opt := benchOpts()
	opt.Size = apps.SizeDefault // the small grid is derived by halving
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Data(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFinite regenerates one finite-capacity figure (Figures 4-8).
func benchFinite(b *testing.B, app string) {
	var last *core.Result
	for i := 0; i < b.N; i++ {
		for _, kb := range experiments.FiniteCachesKB {
			for _, cs := range experiments.ClusterSizes {
				last = runPoint(b, app, cs, kb)
			}
		}
	}
	b.ReportMetric(float64(last.ExecTime), "simcycles")
}

// BenchmarkFig4Raytrace regenerates Figure 4 (finite capacity, Raytrace).
func BenchmarkFig4Raytrace(b *testing.B) { benchFinite(b, "raytrace") }

// BenchmarkFig5MP3D regenerates Figure 5 (finite capacity, MP3D).
func BenchmarkFig5MP3D(b *testing.B) { benchFinite(b, "mp3d") }

// BenchmarkFig6Barnes regenerates Figure 6 (finite capacity, Barnes).
func BenchmarkFig6Barnes(b *testing.B) { benchFinite(b, "barnes") }

// BenchmarkFig7FMM regenerates Figure 7 (finite capacity, FMM).
func BenchmarkFig7FMM(b *testing.B) { benchFinite(b, "fmm") }

// BenchmarkFig8Volrend regenerates Figure 8 (finite capacity, Volrend).
func BenchmarkFig8Volrend(b *testing.B) { benchFinite(b, "volrend") }

// --- tables -------------------------------------------------------------

// BenchmarkTable3WorkingSets regenerates one application's Table 3 row:
// the unclustered miss-rate-versus-cache-size sweep.
func BenchmarkTable3WorkingSets(b *testing.B) {
	for _, app := range registry.Names() {
		app := app
		b.Run(app, func(b *testing.B) {
			var last *core.Result
			for i := 0; i < b.N; i++ {
				last = runPoint(b, app, 1, 0)
				for _, kb := range experiments.WorkingSetSweepKB {
					last = runPoint(b, app, 1, kb)
				}
			}
			b.ReportMetric(100*last.Aggregate().ReadMissRate(), "missrate%")
		})
	}
}

// BenchmarkTable4BankConflict regenerates the bank-conflict formula.
func BenchmarkTable4BankConflict(b *testing.B) {
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for _, n := range experiments.ClusterSizes {
			sum += contention.ClusterConflictProbability(n)
		}
	}
	b.ReportMetric(sum/float64(b.N), "sumC")
}

// BenchmarkTable5LoadLatency regenerates the load-latency expansion
// factors from each application's profile.
func BenchmarkTable5LoadLatency(b *testing.B) {
	var f contention.LoadFactors
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		rows, err := s.Table5Data()
		if err != nil {
			b.Fatal(err)
		}
		f = rows[len(rows)-1].Factors
	}
	b.ReportMetric(f[3], "factor4cyc")
}

// BenchmarkTable6Clustered4KB regenerates the clustering-with-costs
// table at 4 KB caches.
func BenchmarkTable6Clustered4KB(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		rows, err := s.CostedData(experiments.Table6Apps, 4)
		if err != nil {
			b.Fatal(err)
		}
		v = rows[0].Relative[8]
	}
	b.ReportMetric(v, "rel8way")
}

// BenchmarkTable7ClusteredInf regenerates the clustering-with-costs
// table at infinite caches.
func BenchmarkTable7ClusteredInf(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		rows, err := s.CostedData(experiments.Table7Apps, 0)
		if err != nil {
			b.Fatal(err)
		}
		v = rows[0].Relative[8]
	}
	b.ReportMetric(v, "rel8way")
}

// --- ablations (design choices called out in DESIGN.md) ------------------

// BenchmarkAblationQuantum measures the speed/skew trade of the engine's
// event-ordering slack on Ocean.
func BenchmarkAblationQuantum(b *testing.B) {
	for _, q := range []core.Clock{0, 50, 200} {
		q := q
		b.Run(map[bool]string{true: "exact", false: ""}[q == 0]+cyc(q), func(b *testing.B) {
			w, _ := registry.Lookup("ocean")
			var last *core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(4, 0)
				cfg.Quantum = q
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.ExecTime), "simcycles")
		})
	}
}

func cyc(q core.Clock) string {
	switch q {
	case 0:
		return ""
	case 50:
		return "q50"
	default:
		return "q200"
	}
}

// BenchmarkAblationLineSize measures the line-prefetching effect the
// paper attributes to its 64-byte lines, on Ocean and FFT.
func BenchmarkAblationLineSize(b *testing.B) {
	for _, app := range []string{"ocean", "fft"} {
		for _, line := range []uint64{16, 64, 256} {
			app, line := app, line
			b.Run(app+"/"+byteLabel(line), func(b *testing.B) {
				w, _ := registry.Lookup(app)
				var last *core.Result
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(2, 0)
					cfg.LineBytes = line
					res, err := w.Run(cfg, apps.SizeTest)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.ExecTime), "simcycles")
			})
		}
	}
}

func byteLabel(n uint64) string {
	switch n {
	case 16:
		return "16B"
	case 64:
		return "64B"
	default:
		return "256B"
	}
}

// BenchmarkAblationReplacementHints contrasts the directory with and
// without replacement hints on a capacity-stressed MP3D.
func BenchmarkAblationReplacementHints(b *testing.B) {
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "with-hints"
		if disable {
			name = "without-hints"
		}
		b.Run(name, func(b *testing.B) {
			w, _ := registry.Lookup("mp3d")
			var last *core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(2, 4)
				cfg.DisableReplacementHints = disable
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			var inv uint64
			for _, c := range last.Clusters {
				inv += c.InvalidationsSent
			}
			b.ReportMetric(float64(inv), "invalidations")
		})
	}
}

// BenchmarkAblationReplacement contrasts LRU with FIFO replacement in
// the fully associative cluster cache on a capacity-stressed Barnes.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, policy := range []cache.ReplacePolicy{cache.LRU, cache.FIFO} {
		policy := policy
		name := "lru"
		if policy == cache.FIFO {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			w, _ := registry.Lookup("barnes")
			var last *core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(2, 4)
				cfg.Policy = policy
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.ExecTime), "simcycles")
		})
	}
}

// BenchmarkAblationPlacement contrasts round-robin first-touch page
// placement with homing everything at cluster 0, on FFT (whose arrays
// are all first-touch homed; Ocean places its grids explicitly and is
// insensitive by design).
func BenchmarkAblationPlacement(b *testing.B) {
	for _, policy := range []memory.PlacementPolicy{memory.RoundRobin, memory.AllOnZero} {
		policy := policy
		name := "round-robin"
		if policy == memory.AllOnZero {
			name = "all-on-zero"
		}
		b.Run(name, func(b *testing.B) {
			w, _ := registry.Lookup("fft")
			var last *core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1, 0)
				cfg.Placement = policy
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			// The aggregate local fraction is ~1/clusters under either
			// policy by symmetry; what placement changes is which
			// processors enjoy it. Report the luckiest processor's stall
			// relative to the average: homing everything at cluster 0
			// hands processor 0 all the 30-cycle local misses.
			minStall := int64(1 << 62)
			var sumStall int64
			for _, p := range last.Procs {
				if p.LoadStall < minStall {
					minStall = p.LoadStall
				}
				sumStall += p.LoadStall
			}
			if sumStall > 0 {
				avg := float64(sumStall) / float64(len(last.Procs))
				b.ReportMetric(float64(minStall)/avg, "minstallfrac")
			}
			b.ReportMetric(float64(last.ExecTime), "simcycles")
		})
	}
}

// --- extension experiments (the paper's stated future work) --------------

// BenchmarkExtAssociativity regenerates the destructive-interference
// study: limited-associativity cluster caches at 4 KB per processor.
func BenchmarkExtAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		if _, err := experiments.ExtAssociativityData(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtOrganizations regenerates the shared-cache versus
// shared-main-memory cluster comparison.
func BenchmarkExtOrganizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		if _, err := experiments.ExtOrganizationsData(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStoreBuffers measures how much of MP3D's performance
// rests on the paper's hidden-write-latency assumption.
func BenchmarkAblationStoreBuffers(b *testing.B) {
	for _, blocking := range []bool{false, true} {
		blocking := blocking
		name := "hidden-writes"
		if blocking {
			name = "blocking-writes"
		}
		b.Run(name, func(b *testing.B) {
			w, _ := registry.Lookup("mp3d")
			var last *core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(2, 0)
				cfg.BlockingWrites = blocking
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.ExecTime), "simcycles")
		})
	}
}

// BenchmarkExtScaling regenerates the processor-scaling study (Ocean on
// a fixed problem, unclustered vs 4-way).
func BenchmarkExtScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		if _, err := experiments.ExtScalingData(opt); err != nil {
			b.Fatal(err)
		}
	}
}
