// Command simlint runs the project's determinism and contract lint
// over the module.
//
// Usage:
//
//	simlint [-C dir] [-tests] [-q] [-no-audit] [-disable rules]
//	        [-sarif file] [-baseline file] [-write-baseline file]
//	        [packages...]
//
// where packages are directories or "dir/..." wildcards relative to the
// module root (default "./..."). simlint reports:
//
//	wallclock   — wall-clock reads (time.Now/Since/...) in simulated code
//	rand        — math/rand misuse: unseeded global draws, or seeds that
//	              are neither constants nor processor-ID derived
//	maprange    — map iteration leaking order into results
//	goroutine   — go statements outside internal/engine
//	floatclock  — float accumulation into Clock/counter fields
//	hashexclude — core.Config fields out of step with HashExcludedFields,
//	              the declared config-hash exclusion set
//	readonly    — observer packages (telemetry, profile, perf, critpath)
//	              writing through pointers to simulation state or calling
//	              its mutating methods
//	syncname    — empty or duplicate constant names passed to
//	              NewBarrierN/NewLock/NewFlag (core.defineSync panics at
//	              run time on duplicates)
//	unusedallow — //simlint:allow directives that suppress nothing
//
// Findings are silenced with `//simlint:allow <rule>` on or directly
// above the offending line, or in the enclosing function's doc comment.
//
// -sarif writes the findings as a SARIF 2.1.0 log ("-" for stdout).
// -baseline grandfathers findings matched by the given baseline file;
// only fresh findings gate (stale baseline entries are warned about).
// -write-baseline snapshots the current findings as a new baseline.
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"clustersim/internal/lint"
)

const (
	exitOK       = 0
	exitFindings = 1
	exitUsage    = 2
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chdir         = fs.String("C", ".", "module directory to lint")
		tests         = fs.Bool("tests", false, "also lint _test.go files")
		quiet         = fs.Bool("q", false, "print only the finding count")
		noAudit       = fs.Bool("no-audit", false, "skip the unused-allow directive audit")
		disable       = fs.String("disable", "", "comma-separated rules to disable")
		sarifPath     = fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
		baselinePath  = fs.String("baseline", "", "grandfather findings matched by this baseline file")
		writeBaseline = fs.String("write-baseline", "", "snapshot current findings to this baseline file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	opts := &lint.Options{NoAudit: *noAudit}
	if *disable != "" {
		opts.Disabled = make(map[string]bool)
		for _, r := range strings.Split(*disable, ",") {
			r = strings.TrimSpace(r)
			if !lint.KnownRule(r) {
				fmt.Fprintf(stderr, "simlint: -disable: unknown rule %q (rules: %s)\n", r, strings.Join(lint.Rules, " "))
				return exitUsage
			}
			opts.Disabled[r] = true
		}
	}

	loader := &lint.Loader{Tests: *tests}
	pkgs, err := loader.Load(*chdir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return exitUsage
	}
	root := loader.ModRoot()

	findings := lint.CheckModule(pkgs, opts)

	if *writeBaseline != "" {
		b := lint.NewBaseline(findings, root)
		if err := b.WriteFile(*writeBaseline); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return exitUsage
		}
		fmt.Fprintf(stdout, "simlint: wrote baseline %s covering %d finding(s)\n", *writeBaseline, len(findings))
		return exitOK
	}

	grandfathered := 0
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return exitUsage
		}
		var stale []lint.BaselineEntry
		findings, grandfathered, stale = b.Apply(findings, root)
		for _, e := range stale {
			fmt.Fprintf(stderr, "simlint: baseline entry matches nothing (fixed? remove it): %s %s %q\n",
				e.Rule, e.File, e.Msg)
		}
	}

	if *sarifPath != "" {
		w := stdout
		var f *os.File
		if *sarifPath != "-" {
			f, err = os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintln(stderr, "simlint:", err)
				return exitUsage
			}
			w = f
		}
		err = lint.WriteSARIF(w, findings, root)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return exitUsage
		}
	}

	if !*quiet && (*sarifPath != "-") {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) in %d package(s)", len(findings), len(pkgs))
		if grandfathered > 0 {
			fmt.Fprintf(stderr, " (+%d grandfathered by baseline)", grandfathered)
		}
		fmt.Fprintln(stderr)
		return exitFindings
	}
	return exitOK
}
