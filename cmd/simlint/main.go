// Command simlint runs the project's determinism lint over the module.
//
// Usage:
//
//	simlint [-tests] [-q] [packages...]
//
// where packages are directories or "dir/..." wildcards relative to the
// working directory (default "./..."). simlint reports:
//
//	wallclock  — wall-clock reads (time.Now/Since/...) in simulated code
//	rand       — math/rand misuse: unseeded global draws, or seeds that
//	             are neither constants nor processor-ID derived
//	maprange   — map iteration leaking order into results
//	goroutine  — go statements outside internal/engine
//	floatclock — float accumulation into Clock/counter fields
//
// Findings are silenced with `//simlint:allow <rule>` on or directly
// above the offending line, or in the enclosing function's doc comment.
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersim/internal/lint"
)

func main() {
	var (
		tests = flag.Bool("tests", false, "also lint _test.go files")
		quiet = flag.Bool("q", false, "print only the finding count")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := &lint.Loader{Tests: *tests}
	pkgs, err := loader.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	total := 0
	for _, pkg := range pkgs {
		for _, f := range lint.Check(pkg) {
			total++
			if !*quiet {
				fmt.Println(f)
			}
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", total, len(pkgs))
		os.Exit(1)
	}
}
