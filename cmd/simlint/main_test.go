package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one dirty simulation
// package (a time.Now call in internal/core) and one clean package.
func writeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module clustersim\n\ngo 1.21\n",
		"internal/core/clock.go": `package core

import "time"

// Stamp leaks wall-clock time into the simulation.
func Stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/util/util.go": `package util

// Add is determinism-safe.
func Add(a, b int) int { return a + b }
`,
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = realMain(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitCodes(t *testing.T) {
	root := writeModule(t)

	code, out, _ := run(t, "-C", root)
	if code != exitFindings {
		t.Fatalf("dirty module: exit %d, want %d", code, exitFindings)
	}
	if !strings.Contains(out, "wallclock") || !strings.Contains(out, "clock.go") {
		t.Errorf("finding not printed:\n%s", out)
	}

	code, out, _ = run(t, "-C", root, "./internal/util")
	if code != exitOK {
		t.Fatalf("clean package: exit %d, want %d\n%s", code, exitOK, out)
	}

	code, _, stderr := run(t, "-C", root, "-bogus-flag")
	if code != exitUsage {
		t.Fatalf("bad flag: exit %d, want %d (%s)", code, exitUsage, stderr)
	}
	code, _, stderr = run(t, "-C", filepath.Join(root, "no/such/dir"))
	if code != exitUsage {
		t.Fatalf("bad dir: exit %d, want %d (%s)", code, exitUsage, stderr)
	}
	code, _, stderr = run(t, "-C", root, "-disable", "nosuchrule")
	if code != exitUsage || !strings.Contains(stderr, "unknown rule") {
		t.Fatalf("unknown -disable rule: exit %d (%s)", code, stderr)
	}

	code, _, _ = run(t, "-C", root, "-disable", "wallclock")
	if code != exitOK {
		t.Fatalf("-disable wallclock: exit %d, want %d", code, exitOK)
	}
}

func TestQuietAndDirectoryArgs(t *testing.T) {
	root := writeModule(t)

	code, out, stderr := run(t, "-C", root, "-q", "./internal/core")
	if code != exitFindings {
		t.Fatalf("exit %d, want %d", code, exitFindings)
	}
	if strings.Contains(out, "wallclock") {
		t.Errorf("-q must suppress finding lines:\n%s", out)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("count summary missing: %s", stderr)
	}

	// A bare directory argument (no /... wildcard) works too.
	code, _, _ = run(t, "-C", root, "internal/core")
	if code != exitFindings {
		t.Fatalf("bare dir arg: exit %d, want %d", code, exitFindings)
	}
}

func TestSARIFFlag(t *testing.T) {
	root := writeModule(t)
	sarifFile := filepath.Join(t.TempDir(), "out.sarif")

	code, _, _ := run(t, "-C", root, "-sarif", sarifFile)
	if code != exitFindings {
		t.Fatalf("exit %d, want %d", code, exitFindings)
	}
	data, err := os.ReadFile(sarifFile)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single-run SARIF 2.1.0 log: version=%q runs=%d", log.Version, len(log.Runs))
	}
	res := log.Runs[0].Results
	if len(res) != 1 || res[0].RuleID != "wallclock" {
		t.Fatalf("results = %+v", res)
	}
	if uri := res[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/core/clock.go" {
		t.Errorf("artifact URI = %q, want module-relative path", uri)
	}

	// "-" streams the log to stdout instead of finding lines.
	code, out, _ := run(t, "-C", root, "-sarif", "-")
	if code != exitFindings {
		t.Fatalf("exit %d, want %d", code, exitFindings)
	}
	if !strings.Contains(out, `"$schema"`) || strings.Contains(out, "clock.go:6") {
		t.Errorf("-sarif - must print only the SARIF log:\n%s", out)
	}
}

func TestBaselineFlags(t *testing.T) {
	root := writeModule(t)
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	code, out, _ := run(t, "-C", root, "-write-baseline", baseline)
	if code != exitOK || !strings.Contains(out, "covering 1 finding(s)") {
		t.Fatalf("write-baseline: exit %d out %q", code, out)
	}

	// Grandfathered by the baseline: clean exit.
	code, _, stderr := run(t, "-C", root, "-baseline", baseline)
	if code != exitOK {
		t.Fatalf("baselined run: exit %d, want %d (%s)", code, exitOK, stderr)
	}

	// A new violation still gates, and the summary reports both counts.
	extra := filepath.Join(root, "internal/core/more.go")
	src := "package core\n\nimport \"time\"\n\n// Later leaks more wall-clock time.\nfunc Later() int64 { return time.Now().Unix() }\n"
	if err := os.WriteFile(extra, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr = run(t, "-C", root, "-baseline", baseline)
	if code != exitFindings {
		t.Fatalf("fresh finding past baseline: exit %d, want %d", code, exitFindings)
	}
	if !strings.Contains(out, "more.go") || strings.Contains(out, "clock.go") {
		t.Errorf("only the fresh finding should print:\n%s", out)
	}
	if !strings.Contains(stderr, "+1 grandfathered") {
		t.Errorf("summary should count grandfathered findings: %s", stderr)
	}

	// Fixing the baselined file makes its entry stale: warned, not fatal.
	if err := os.Remove(filepath.Join(root, "internal/core/clock.go")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(extra); err != nil {
		t.Fatal(err)
	}
	clean := "package core\n\n// Quiet has no findings.\nfunc Quiet() {}\n"
	if err := os.WriteFile(filepath.Join(root, "internal/core/clock.go"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = run(t, "-C", root, "-baseline", baseline)
	if code != exitOK || !strings.Contains(stderr, "matches nothing") {
		t.Fatalf("stale baseline entry: exit %d stderr %q", code, stderr)
	}

	// Schema mismatch is a usage error.
	if err := os.WriteFile(baseline, []byte(`{"schema":"wrong/v0","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _ = run(t, "-C", root, "-baseline", baseline)
	if code != exitUsage {
		t.Fatalf("bad baseline schema: exit %d, want %d", code, exitUsage)
	}
}
