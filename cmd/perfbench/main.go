// Command perfbench is the machine-readable benchmark harness: it runs
// the fixed matrix of the repo's Go benchmarks (bench_test.go) exactly
// once per point with the host performance monitor attached and writes
// one BENCH_<stamp>.json report (schema in EXPERIMENTS.md).
//
// Run the full matrix and write a report into the current directory:
//
//	perfbench
//
// Run three applications and gate against the checked-in baseline:
//
//	perfbench -apps mp3d,ocean,fft -baseline bench_baseline.json
//
// With -baseline the process exits 1 when a deterministic counter
// (points, simcycles, handoffs, refs) drifts or allocations grow past
// -tolerance; wall-clock metrics never gate. Exit codes: 0 clean,
// 1 regression, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/bench"
	"clustersim/internal/perf"
	"clustersim/internal/telemetry"
)

// Exit codes. Usage errors are 2, matching flag.ExitOnError convention.
const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procs := fs.Int("procs", 16, "simulated processors per point")
	size := fs.String("size", "test", "problem size: test, default or paper")
	appsFlag := fs.String("apps", "", "comma-separated application filter (empty = all)")
	outDir := fs.String("out", ".", "directory for the BENCH_<stamp>.json report")
	stamp := fs.String("stamp", "", "report stamp (default: current UTC time)")
	baseline := fs.String("baseline", "", "baseline BENCH json to gate against (empty = no gate)")
	tolerance := fs.Float64("tolerance", 0.05, "accepted fractional growth of allocations")
	list := fs.Bool("list", false, "list the benchmark matrix and exit")
	quiet := fs.Bool("quiet", false, "suppress per-benchmark progress on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the harness run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile after the run to this file")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "perfbench: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return exitUsage
	}
	sz, err := parseSize(*size)
	if err != nil {
		fmt.Fprintln(stderr, "perfbench:", err)
		return exitUsage
	}

	specs := bench.DefaultSpecs()
	if *appsFlag != "" {
		specs = bench.FilterApps(specs, strings.Split(*appsFlag, ","))
		if len(specs) == 0 {
			fmt.Fprintf(stderr, "perfbench: no benchmarks match -apps %s\n", *appsFlag)
			return exitUsage
		}
	}
	if *list {
		for _, s := range specs {
			fmt.Fprintf(stdout, "%-18s %s  %d points\n", s.Name, s.App, s.Points())
		}
		return exitOK
	}

	if *cpuprofile != "" {
		stop, err := perf.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "perfbench:", err)
			return exitUsage
		}
		defer stop()
	}

	opt := bench.Options{Procs: *procs, Size: sz}
	if !*quiet {
		opt.Progress = stderr
	}
	start := time.Now() //simlint:allow wallclock — harness self-timing
	measurements, err := bench.Run(specs, opt)
	if err != nil {
		fmt.Fprintln(stderr, "perfbench:", err)
		return exitUsage
	}
	host := perf.ReadHost()
	host.WallNS = int64(time.Since(start)) //simlint:allow wallclock — harness self-timing
	report := &bench.Report{
		Schema:     bench.SchemaV1,
		Stamp:      stampOrNow(*stamp),
		Procs:      *procs,
		Size:       *size,
		Host:       host,
		Benchmarks: measurements,
	}

	path := filepath.Join(*outDir, "BENCH_"+report.Stamp+".json")
	if err := telemetry.AtomicFile(path, func(w io.Writer) error {
		return bench.WriteReport(w, report)
	}); err != nil {
		fmt.Fprintln(stderr, "perfbench:", err)
		return exitUsage
	}
	fmt.Fprintf(stderr, "perfbench: wrote %s\n", path)
	bench.WriteTable(stdout, report)

	if *memprofile != "" {
		if err := perf.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(stderr, "perfbench:", err)
			return exitUsage
		}
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "perfbench:", err)
			return exitUsage
		}
		deltas, regressions := bench.Compare(base, report, bench.Tolerance{Allocs: *tolerance})
		bench.WriteDiff(stdout, base, report, deltas, regressions)
		if regressions > 0 {
			return exitRegression
		}
	}
	return exitOK
}

func readReport(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := bench.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func stampOrNow(s string) string {
	if s != "" {
		return s
	}
	return time.Now().UTC().Format("20060102T150405Z") //simlint:allow wallclock — report stamp only
}

func parseSize(s string) (apps.Size, error) {
	switch s {
	case "test":
		return apps.SizeTest, nil
	case "default":
		return apps.SizeDefault, nil
	case "paper":
		return apps.SizePaper, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}
