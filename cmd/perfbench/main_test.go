package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersim/internal/bench"
)

// runMain wraps realMain with buffered output streams.
func runMain(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = realMain(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestList(t *testing.T) {
	code, out, _ := runMain("-list")
	if code != exitOK {
		t.Fatalf("exit %d, want %d", code, exitOK)
	}
	for _, want := range []string{"fig2/fft", "fig2/mp3d", "finite/volrend"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
	code, out, _ = runMain("-list", "-apps", "ocean")
	if code != exitOK {
		t.Fatalf("filtered list: exit %d, want %d", code, exitOK)
	}
	if !strings.Contains(out, "fig2/ocean") || strings.Contains(out, "fig2/fft") {
		t.Errorf("filtered list wrong:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-size", "galactic"},
		{"stray-positional"},
		{"-apps", "no-such-app"},
		{"-baseline", "does-not-exist.json", "-apps", "fft", "-procs", "8", "-quiet", "-out", t.TempDir()},
	}
	for _, args := range cases {
		if code, _, _ := runMain(args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

// TestRunAndGate is the end-to-end acceptance test: a run writes a
// valid BENCH json, a rerun gated against that report passes, and a
// perturbed-simcycles baseline makes the gate exit nonzero.
func TestRunAndGate(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runMain("-apps", "fft", "-procs", "8", "-stamp", "base", "-out", dir, "-quiet")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr: %s", code, exitOK, errOut)
	}
	if !strings.Contains(out, "fig2/fft") {
		t.Errorf("table missing benchmark:\n%s", out)
	}
	basePath := filepath.Join(dir, "BENCH_base.json")
	base := readBench(t, basePath)
	if base.Procs != 8 || base.Size != "test" || len(base.Benchmarks) != 1 {
		t.Fatalf("bad report: %+v", base)
	}
	if base.Host.GoVersion == "" || base.Host.WallNS <= 0 {
		t.Errorf("host block unfilled: %+v", base.Host)
	}

	// Identical matrix against the true baseline: clean gate.
	code, out, errOut = runMain("-apps", "fft", "-procs", "8", "-stamp", "cur", "-out", dir,
		"-quiet", "-baseline", basePath)
	if code != exitOK {
		t.Fatalf("true baseline: exit %d, want %d\nstdout: %s\nstderr: %s", code, exitOK, out, errOut)
	}
	if !strings.Contains(out, "no regressions") {
		t.Errorf("clean gate missing verdict:\n%s", out)
	}

	// Perturbed simcycles in the baseline: gate trips.
	base.Benchmarks[0].SimCycles += 3
	writeBench(t, basePath, base)
	code, out, _ = runMain("-apps", "fft", "-procs", "8", "-stamp", "cur2", "-out", dir,
		"-quiet", "-baseline", basePath)
	if code != exitRegression {
		t.Fatalf("perturbed baseline: exit %d, want %d\nstdout: %s", code, exitRegression, out)
	}
	if !strings.Contains(out, "simCycles") {
		t.Errorf("diff does not name the drifted counter:\n%s", out)
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, errOut := runMain("-apps", "fft", "-procs", "8", "-stamp", "p", "-out", dir,
		"-quiet", "-cpuprofile", cpu, "-memprofile", mem)
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr: %s", code, exitOK, errOut)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func readBench(t *testing.T, path string) *bench.Report {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := bench.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func writeBench(t *testing.T, path string, r *bench.Report) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bench.WriteReport(f, r); err != nil {
		t.Fatal(err)
	}
}
