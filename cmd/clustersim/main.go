// Command clustersim runs one application on one clustered-machine
// configuration and prints the execution-time breakdown and miss
// profile.
//
// Usage:
//
//	clustersim -app ocean -procs 64 -cluster 4 -cache 16 -size default
//
// -cache 0 simulates infinite caches (the paper's Figure 2 setting).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
)

func main() {
	var (
		app     = flag.String("app", "ocean", "application: "+strings.Join(registry.Names(), ", "))
		procs   = flag.Int("procs", 64, "total processors")
		cluster = flag.Int("cluster", 1, "processors per cluster (1, 2, 4 or 8)")
		cacheKB = flag.Int("cache", 0, "cache KB per processor (0 = infinite)")
		size    = flag.String("size", "default", "problem size: test, default or paper")
		line    = flag.Uint64("line", 64, "cache line bytes")
		quantum = flag.Int64("quantum", 0, "event-ordering slack in cycles (0 = exact)")
		profile = flag.Bool("profile", false, "attribute references to named allocations")
		org     = flag.String("org", "shared-cache", "cluster organization: shared-cache or shared-memory")
	)
	flag.Parse()

	sz, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}
	w, err := registry.Lookup(*app)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Procs = *procs
	cfg.ClusterSize = *cluster
	cfg.CacheKBPerProc = *cacheKB
	cfg.LineBytes = *line
	cfg.Quantum = *quantum
	cfg.ProfileRegions = *profile
	switch *org {
	case "shared-cache":
		cfg.Organization = core.SharedCache
	case "shared-memory":
		cfg.Organization = core.SharedMemory
	default:
		fatal(fmt.Errorf("unknown organization %q", *org))
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	res, err := w.Run(cfg, sz)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%s size)\n", w.Name, sz)
	res.WriteSummary(os.Stdout)
	if *profile {
		fmt.Println("region profile:")
		res.WriteRegionProfile(os.Stdout)
	}
}

func parseSize(s string) (apps.Size, error) {
	switch s {
	case "test":
		return apps.SizeTest, nil
	case "default":
		return apps.SizeDefault, nil
	case "paper":
		return apps.SizePaper, nil
	}
	return 0, fmt.Errorf("unknown size %q (test, default, paper)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(2)
}
