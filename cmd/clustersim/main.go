// Command clustersim runs one application on one clustered-machine
// configuration and prints the execution-time breakdown and miss
// profile.
//
// Usage:
//
//	clustersim -app ocean -procs 64 -cluster 4 -cache 16 -size default
//
// -cache 0 simulates infinite caches (the paper's Figure 2 setting).
//
// Observability flags (see README "Observability"):
//
//	-trace out.json   write a Chrome trace-event file (open at
//	                  ui.perfetto.dev; 1 cycle = 1 µs of trace time)
//	-json             print a JSON run manifest instead of the text report
//	-sample N         sample per-cluster counter deltas every N cycles
//	-progress         stream sampling progress to stderr
//	-profile out.json write a data-centric sharing profile (misses
//	                  classified cold/replacement/true/false-sharing per
//	                  region, hot lines, page locality) and print the
//	                  flat report; render later with `tracetool profile`
//	-top N            hot lines to rank in the profile (default 10)
//	-regions          coarse per-region reference counters (text report)
//	-critpath o.json  write a critical-path analysis (barrier-delimited
//	                  phases with per-PE breakdowns, barrier imbalance,
//	                  lock contention, balanced-ideal speedup) and print
//	                  the flat report; render later with
//	                  `tracetool critpath`
//	-serve :9090      serve live observability endpoints while the run
//	                  executes (/metrics Prometheus exposition, /status
//	                  JSON, /events tail, /debug/pprof); gauges advance
//	                  on the sampling grid (README "Live observability")
//
// Host-side performance flags (see README "Simulator performance"):
//
//	-cpuprofile f     write a pprof CPU profile of the simulator process
//	                  (inspect with `go tool pprof f`)
//	-memprofile f     write a pprof heap profile after the run
//
// With -json the manifest also carries a `host` block (Go version,
// GOMAXPROCS, wall duration, peak heap) from the attached performance
// monitor; it describes the host, never the simulated machine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/critpath"
	"clustersim/internal/fault"
	"clustersim/internal/obs"
	"clustersim/internal/perf"
	"clustersim/internal/profile"
	"clustersim/internal/telemetry"
)

// exitInterrupted is the SIGINT/SIGTERM exit code, distinct from the
// usage-error code 2 (and matching experiments.ExitInterrupted). All
// file artifacts are written atomically (temp + rename), so an
// interrupt never leaves a torn JSON document behind.
const exitInterrupted = 3

func main() {
	var (
		app      = flag.String("app", "ocean", "application: "+strings.Join(registry.Names(), ", "))
		procs    = flag.Int("procs", 64, "total processors")
		cluster  = flag.Int("cluster", 1, "processors per cluster (1, 2, 4 or 8)")
		cacheKB  = flag.Int("cache", 0, "cache KB per processor (0 = infinite)")
		size     = flag.String("size", "default", "problem size: test, default or paper")
		line     = flag.Uint64("line", 64, "cache line bytes")
		quantum  = flag.Int64("quantum", 0, "event-ordering slack in cycles (0 = exact)")
		regions  = flag.Bool("regions", false, "attribute references to named allocations (coarse text report)")
		sanitize = flag.Bool("sanitize", false, "cross-validate directory/cache state after every transaction (requires -quantum 0)")
		org      = flag.String("org", "shared-cache", "cluster organization: shared-cache or shared-memory")

		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto)")
		jsonOut  = flag.Bool("json", false, "print a JSON run manifest instead of the text report")
		sample   = flag.Int64("sample", 0, "telemetry sampling interval in cycles (0 = off)")
		progress = flag.Bool("progress", false, "stream sampling progress to stderr")
		profOut  = flag.String("profile", "", "write a sharing-profile JSON file and print the flat report")
		topLines = flag.Int("top", 10, "hot cache lines to rank in the sharing profile")
		critOut  = flag.String("critpath", "", "write a critical-path analysis JSON file and print the flat report")
		serve    = flag.String("serve", "", "serve live observability endpoints (/metrics, /status, /events, /debug/pprof) on this address while the run executes")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator process to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile after the run to this file")

		faultSeed    = flag.Int64("fault-seed", 1, "fault plan seed (with any -fault-* probability set)")
		faultNack    = flag.Int("fault-nack", 0, "directory-busy NACK probability per 1000 requests")
		faultAck     = flag.Int("fault-ack", 0, "delayed invalidation-ack probability per 1000 acks")
		faultPerturb = flag.Int("fault-perturb", 0, "remote-hop jitter probability per 1000 fetches")
	)
	flag.Parse()

	// SIGINT/SIGTERM exit with a distinct code. Output files are only
	// written after the run, atomically, so there is nothing to flush —
	// the handler's job is the exit code and a clean one-line diagnostic
	// instead of a runtime panic dump.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	// Harness-level watcher, not simulation code: it never touches the
	// machine, only the process.
	go func() { //simlint:allow goroutine
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "clustersim: %v: aborting run (no partial artifacts are written)\n", sig)
		os.Exit(exitInterrupted)
	}()

	sz, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}
	w, err := registry.Lookup(*app)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Procs = *procs
	cfg.ClusterSize = *cluster
	cfg.CacheKBPerProc = *cacheKB
	cfg.LineBytes = *line
	cfg.Quantum = *quantum
	cfg.ProfileRegions = *regions
	cfg.Sanitize = *sanitize
	switch *org {
	case "shared-cache":
		cfg.Organization = core.SharedCache
	case "shared-memory":
		cfg.Organization = core.SharedMemory
	default:
		fatal(fmt.Errorf("unknown organization %q", *org))
	}
	if *faultNack > 0 || *faultAck > 0 || *faultPerturb > 0 {
		cfg.Faults = &fault.Config{
			Seed:             *faultSeed,
			NackPerMille:     *faultNack,
			AckDelayPerMille: *faultAck,
			PerturbPerMille:  *faultPerturb,
		}
	}

	if *sample < 0 {
		fatal(fmt.Errorf("-sample %d: interval must be non-negative", *sample))
	}

	// Any observability flag attaches a collector. -progress and -serve
	// both ride the interval sampler, so either one without an explicit
	// -sample gets the default grid (see effectiveSampleInterval).
	sampleEvery := effectiveSampleInterval(*sample, *progress || *serve != "")
	var col *telemetry.Collector
	if *traceOut != "" || *jsonOut || sampleEvery > 0 {
		col = telemetry.New()
		if *progress {
			col.SetProgress(os.Stderr, *app)
		}
		cfg.Telemetry = col
		cfg.SampleEvery = sampleEvery
	}
	var prof *profile.Collector
	if *profOut != "" {
		prof = profile.New()
		cfg.Profile = prof
	}
	var crit *critpath.Analyzer
	if *critOut != "" {
		crit = critpath.New()
		cfg.Critpath = crit
	}
	// The manifest's host block comes from the performance monitor; it
	// observes through the engine's token discipline and never perturbs
	// the simulation (pinned by TestMonitorDeterminism).
	var mon *perf.Monitor
	if *jsonOut {
		mon = perf.New()
		cfg.Perf = mon
	}

	// -serve exposes the live observability plane for the single run:
	// counters and the virtual-time gauge advance on the telemetry
	// sampler's grid, /status tracks the one point, /events carries its
	// span. Wall-clock-side only — the run's Result and config hash are
	// byte-identical with or without it.
	var sweep *obs.Sweep
	pointName := fmt.Sprintf("%s-c%d-%s", *app, *cluster, cacheLabel(*cacheKB))
	if *serve != "" {
		runID := fmt.Sprintf("clustersim-%d", os.Getpid())
		reg := obs.NewRegistry()
		evlog := obs.NewLog(nil, runID)
		sweep = obs.NewSweep(runID, reg, evlog)
		sweep.SetIdentity(*app, *procs, sz.String())
		sweep.SetTotalPoints(1)
		vt := reg.Gauge("clustersim_run_virtual_cycles", "Simulated time of the latest telemetry sample.")
		refs := reg.Counter("clustersim_run_references_total", "Memory references accumulated over telemetry samples.")
		rdMiss := reg.Counter("clustersim_run_read_misses_total", "Read misses accumulated over telemetry samples.")
		merges := reg.Counter("clustersim_run_merges_total", "Fill merges accumulated over telemetry samples.")
		invals := reg.Counter("clustersim_run_invalidations_total", "Invalidations sent, accumulated over telemetry samples.")
		col.SetOnSample(func(at telemetry.Clock, t telemetry.ClusterSample) {
			vt.Set(float64(at))
			refs.Add(float64(t.Refs.References()))
			rdMiss.Add(float64(t.Refs.ReadMisses))
			merges.Add(float64(t.Refs.Merges))
			invals.Add(float64(t.Coh.InvalidationsSent))
		})
		srv, err := obs.NewServer(reg, sweep, evlog).Start(*serve)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "clustersim: observability endpoints on %s\n", srv.URL())
	}

	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *cpuprofile != "" {
		stop, err := perf.StartCPUProfile(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	sweep.PointStarted(pointName, *app, *cluster, cacheLabel(*cacheKB))
	// Wall timing feeds the observability plane only, never the machine.
	start := time.Now() //simlint:allow wallclock
	res, err := w.Run(cfg, sz)
	if err != nil {
		sweep.PointFailed(pointName, *app, *cluster, cacheLabel(*cacheKB), err.Error())
		fatal(err)
	}
	sweep.PointDone(pointName, time.Since(start), int64(res.ExecTime)) //simlint:allow wallclock
	sweep.Finish(0)
	if *memprofile != "" {
		if err := perf.WriteHeapProfile(*memprofile); err != nil {
			fatal(err)
		}
	}

	var profReport *profile.Report
	if prof != nil {
		profReport = prof.Report(*topLines)
		profReport.App, profReport.Size = *app, sz.String()
		if h, err := telemetry.HashConfig(cfg); err == nil {
			profReport.ConfigHash = h
		}
		if err := writeProfile(*profOut, profReport); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clustersim: wrote sharing profile to %s (render with `tracetool profile %s`)\n",
			*profOut, *profOut)
	}

	var critReport *critpath.Report
	if crit != nil {
		critReport = crit.Report(0)
		critReport.App, critReport.Size = *app, sz.String()
		if h, err := telemetry.HashConfig(cfg); err == nil {
			critReport.ConfigHash = h
		}
		if err := writeCritpath(*critOut, critReport); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clustersim: wrote critical-path analysis to %s (render with `tracetool critpath %s`)\n",
			*critOut, *critOut)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, col, *app, sz.String(), cfg); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clustersim: wrote trace to %s (open at ui.perfetto.dev)\n", *traceOut)
	}

	if *jsonOut {
		m := telemetry.Manifest{
			App:       *app,
			Size:      sz.String(),
			Config:    cfg,
			Result:    res,
			Memory:    res.MemoryReport(),
			Telemetry: col.SelfReport(),
		}
		if mon != nil {
			m.Host = mon.Report().Host
		}
		if profReport != nil {
			m.Profile = profReport.Summary()
		}
		if critReport != nil {
			m.Critpath = critReport.Summary()
		}
		if err := telemetry.WriteManifest(os.Stdout, m); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s (%s size)\n", w.Name, sz)
	res.WriteSummary(os.Stdout)
	if *regions {
		fmt.Println("region profile:")
		res.WriteRegionProfile(os.Stdout)
	}
	if profReport != nil {
		fmt.Println()
		profile.WriteFlat(os.Stdout, profReport)
	}
	if critReport != nil {
		fmt.Println()
		critpath.WriteFlat(os.Stdout, critReport)
	}
}

func writeCritpath(path string, r *critpath.Report) error {
	return telemetry.AtomicFile(path, func(w io.Writer) error {
		return critpath.WriteReport(w, r)
	})
}

func writeProfile(path string, r *profile.Report) error {
	return telemetry.AtomicFile(path, func(w io.Writer) error {
		return profile.WriteReport(w, r)
	})
}

func writeTrace(path string, col *telemetry.Collector, app, size string, cfg core.Config) error {
	hash, err := telemetry.HashConfig(cfg)
	if err != nil {
		return err
	}
	return telemetry.AtomicFile(path, func(w io.Writer) error {
		return telemetry.WriteChromeTrace(w, col, map[string]string{
			"app": app, "size": size, "configHash": hash,
		})
	})
}

// effectiveSampleInterval resolves the telemetry sampling grid from the
// flags: an explicit positive -sample wins; otherwise any feature that
// rides the sampler (-progress, -serve) gets the default interval; with
// neither, sampling stays off. Centralised so every sampler consumer
// defaults the same way (pinned by TestEffectiveSampleInterval).
func effectiveSampleInterval(sample int64, wantSampling bool) int64 {
	if sample > 0 {
		return sample
	}
	if wantSampling {
		return telemetry.SampleInterval(0)
	}
	return 0
}

// cacheLabel names a per-processor cache size as point names and
// /status rows spell it (matching the experiments artifact stems).
func cacheLabel(kb int) string {
	if kb == 0 {
		return "inf"
	}
	return fmt.Sprintf("%dk", kb)
}

func parseSize(s string) (apps.Size, error) {
	switch s {
	case "test":
		return apps.SizeTest, nil
	case "default":
		return apps.SizeDefault, nil
	case "paper":
		return apps.SizePaper, nil
	}
	return 0, fmt.Errorf("unknown size %q (test, default, paper)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(2)
}
