package main

import (
	"testing"

	"clustersim/internal/telemetry"
)

// TestEffectiveSampleInterval pins the one sampling-grid policy every
// sampler consumer shares: an explicit -sample always wins, and any
// feature riding the sampler (-progress, -serve) defaults the grid
// instead of silently sampling nothing.
func TestEffectiveSampleInterval(t *testing.T) {
	cases := []struct {
		name         string
		sample       int64
		wantSampling bool
		want         int64
	}{
		{"off", 0, false, 0},
		{"progress defaults the grid", 0, true, telemetry.DefaultInterval},
		{"explicit interval alone", 5000, false, 5000},
		{"explicit interval wins over default", 5000, true, 5000},
	}
	for _, tc := range cases {
		if got := effectiveSampleInterval(tc.sample, tc.wantSampling); got != tc.want {
			t.Errorf("%s: effectiveSampleInterval(%d, %v) = %d, want %d",
				tc.name, tc.sample, tc.wantSampling, got, tc.want)
		}
	}
}

// TestCacheLabel pins the point-name spelling shared with the
// experiments artifact stems.
func TestCacheLabel(t *testing.T) {
	if got := cacheLabel(0); got != "inf" {
		t.Errorf("cacheLabel(0) = %q, want inf", got)
	}
	if got := cacheLabel(16); got != "16k" {
		t.Errorf("cacheLabel(16) = %q, want 16k", got)
	}
}
