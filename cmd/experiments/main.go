// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] <what>...
//
// where <what> is any of: table1 table2 table3 table4 table5 table6
// table7 fig2 fig3 fig4 fig5 fig6 fig7 fig8, ext-assoc ext-org
// ext-scaling ext-faults, or "all".
//
// By default the runs use the scaled default problem sizes on the
// paper's 64-processor machine; -size paper selects the full Table 2
// problem sizes (slower), and -procs shrinks the machine for quick
// looks.
//
// Robustness: -state journals every finished point so an interrupted
// run resumes where it left off; SIGINT/SIGTERM stop the suite cleanly
// between points (exit code 3); -point-timeout aborts a wedged point
// (exit code 4); -fault-* flags inject the deterministic fault plan.
//
// Observability: -serve exposes live endpoints while the sweep runs
// (/metrics Prometheus exposition, /status sweep JSON, /events run-event
// tail, /debug/pprof); -events appends a structured JSONL run-event log
// (schema clustersim/events/v1); -linger keeps the endpoints up after
// the suite finishes so scrapes and smoke tests can read final state.
// All of it is wall-clock-side: results and config hashes are
// byte-identical with or without these flags.
//
// Exit codes (also in README "Exit codes" and `experiments -h`):
//
//	0  every requested experiment completed
//	1  at least one point or experiment failed; the rest ran
//	2  bad flags or configuration
//	3  SIGINT/SIGTERM (or -stop-after) stopped the suite between points
//	4  -point-timeout aborted a hung point
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/experiments"
	"clustersim/internal/fabric"
	"clustersim/internal/fault"
	"clustersim/internal/obs"
	"clustersim/internal/obs/fleet"
	"clustersim/internal/perf"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		procs    = flag.Int("procs", 64, "total processors")
		size     = flag.String("size", "default", "problem size: test, default or paper")
		quantum  = flag.Int64("quantum", 0, "event-ordering slack in cycles (0 = exact)")
		sanitize = flag.Bool("sanitize", false, "cross-validate directory/cache state after every transaction (requires -quantum 0)")
		bars     = flag.Bool("bars", false, "render figures as ASCII stacked bars")
		csvOut   = flag.Bool("csv", false, "emit figure data as CSV rows")
		progress = flag.Bool("progress", false, "log each completed simulation point to stderr")
		sample   = flag.Int64("sample", 0, "telemetry sampling interval in cycles (0 = off)")
		traceDir = flag.String("trace", "", "write one Chrome trace-event JSON per run into this directory")
		profDir  = flag.String("profile", "", "write one sharing-profile JSON per run into this directory")
		profTop  = flag.Int("top", 10, "hot cache lines to rank in each sharing profile")
		critDir  = flag.String("critpath", "", "write one critical-path analysis JSON per run into this directory")
		jsonOut  = flag.String("json", "", "append one JSON run manifest per line (JSONL) to this file")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole suite to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile after the suite to this file")

		stateDir = flag.String("state", "", "journal each finished point into this directory and resume from it")
		timeout  = flag.Duration("point-timeout", 0, "wall-clock watchdog per simulation point (0 = off); a hung point is recorded as failed and the process exits 4")
		retry    = flag.Bool("retry-failed", false, "re-run points the journal records as failed")
		stopN    = flag.Int("stop-after", 0, "interrupt the suite after N freshly simulated points (resume testing; 0 = off)")

		serveAddr = flag.String("serve", "", "serve live observability endpoints (/metrics, /status, /events, /debug/pprof) on this address, e.g. :9090")
		eventsOut = flag.String("events", "", "append structured run events (JSONL, schema clustersim/events/v1) to this file")
		linger    = flag.Duration("linger", 0, "keep -serve endpoints up this long after the suite finishes")

		faultSeed    = flag.Int64("fault-seed", 1, "fault plan seed (with any -fault-* probability set)")
		faultNack    = flag.Int("fault-nack", 0, "directory-busy NACK probability per 1000 requests")
		faultAck     = flag.Int("fault-ack", 0, "delayed invalidation-ack probability per 1000 acks")
		faultPerturb = flag.Int("fault-perturb", 0, "remote-hop jitter probability per 1000 fetches")

		coordAddr = flag.String("coordinator", "", "distribute the sweep: listen for fabric workers on this address (e.g. :7600); requires -state")
		workerID  = flag.String("worker", "", "run as a fabric worker with this stable identity; requires -connect")
		connect   = flag.String("connect", "", "coordinator address a -worker connects to")
		steal     = flag.Bool("steal", true, "coordinator: let idle workers duplicate in-flight leases (work stealing)")
	)
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, usageText())
		flag.PrintDefaults()
	}
	flag.Parse()
	// A worker takes no experiment names: its work arrives over the wire.
	if flag.NArg() == 0 && *workerID == "" {
		flag.Usage()
		return experiments.ExitUsage
	}
	if *workerID != "" && *connect == "" {
		return usageError(fmt.Errorf("-worker %s needs -connect <coordinator address>", *workerID))
	}
	if *workerID == "" && *connect != "" {
		return usageError(fmt.Errorf("-connect is only meaningful with -worker <id>"))
	}
	if *coordAddr != "" && *workerID != "" {
		return usageError(fmt.Errorf("-coordinator and -worker are mutually exclusive roles"))
	}
	if *coordAddr != "" && *stateDir == "" {
		return usageError(fmt.Errorf("-coordinator needs -state: distributed results land in the journal the rendering pass replays"))
	}
	if *sample < 0 {
		return usageError(fmt.Errorf("-sample %d: interval must be non-negative", *sample))
	}
	if *cpuprofile != "" {
		stopProf, err := perf.StartCPUProfile(*cpuprofile)
		if err != nil {
			return usageError(err)
		}
		defer stopProf()
	}
	if *memprofile != "" {
		// Deferred so the snapshot covers the whole suite; runs before the
		// CPU-profile stop above unwinds.
		defer func() {
			if err := perf.WriteHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	opt := experiments.DefaultOptions()
	opt.Procs = *procs
	opt.Quantum = *quantum
	opt.Sanitize = *sanitize
	opt.Bars = *bars
	opt.CSV = *csvOut
	opt.SampleEvery = *sample
	opt.TraceDir = *traceDir
	opt.ProfileDir = *profDir
	opt.ProfileTop = *profTop
	opt.CritpathDir = *critDir
	opt.PointTimeout = *timeout
	opt.RetryFailed = *retry
	opt.StopAfter = *stopN
	if *progress {
		opt.Progress = os.Stderr
	}
	if *faultNack > 0 || *faultAck > 0 || *faultPerturb > 0 {
		opt.Faults = &fault.Config{
			Seed:             *faultSeed,
			NackPerMille:     *faultNack,
			AckDelayPerMille: *faultAck,
			PerturbPerMille:  *faultPerturb,
		}
		if err := opt.Faults.Validate(); err != nil {
			return usageError(err)
		}
	}
	if *stateDir != "" {
		j, err := experiments.OpenJournal(*stateDir)
		if err != nil {
			return usageError(err)
		}
		opt.Journal = j
	}
	if *jsonOut != "" {
		f, err := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return usageError(err)
		}
		// Closed explicitly before every return path of realMain; the
		// watchdog and double-signal paths os.Exit instead, which is safe
		// because manifest lines are single appended Writes (never torn).
		defer f.Close()
		opt.ManifestOut = f
	}
	switch *size {
	case "test":
		opt.Size = apps.SizeTest
	case "default":
		opt.Size = apps.SizeDefault
	case "paper":
		opt.Size = apps.SizePaper
	default:
		return usageError(fmt.Errorf("unknown size %q", *size))
	}
	stop := experiments.NewSignalStop()
	defer stop.Close()
	opt.Stop = stop.Stopped
	if opt.Journal != nil {
		stop.SetJournalDir(opt.Journal.Dir())
	}

	if *workerID != "" {
		return runWorker(*workerID, *connect, opt, stop, *serveAddr, *eventsOut)
	}

	what := flag.Args()
	if len(what) == 1 && what[0] == "all" {
		what = []string{"table1", "table2", "table3", "table4", "table5",
			"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table6", "table7",
			"ext-assoc", "ext-org", "ext-scaling", "ext-faults"}
	}

	// Live observability plane (-serve / -events). Strictly wall-clock-
	// side: the sweep only observes the suite, so tables, Result JSON and
	// config hashes are byte-identical with or without it.
	runID := fmt.Sprintf("experiments-%d", os.Getpid())
	var (
		reg   *obs.Registry
		evlog *obs.Log
		sweep *obs.Sweep
	)
	if *eventsOut != "" {
		l, err := obs.OpenLog(*eventsOut, runID)
		if err != nil {
			return usageError(err)
		}
		defer l.Close()
		evlog = l
	}
	if *serveAddr != "" {
		reg = obs.NewRegistry()
		if evlog == nil {
			// Memory-only tail so GET /events works without -events.
			evlog = obs.NewLog(nil, runID)
		}
	}
	if reg != nil || evlog != nil {
		sweep = obs.NewSweep(runID, reg, evlog)
		sweep.SetIdentity(strings.Join(what, " "), *procs, *size)
		opt.Obs = sweep
	}
	// Fleet observability plane (coordinator role): mirror the merged
	// event log into the aggregated fleet view and federate worker
	// metrics, serving GET /fleet, /fleet/trace and /fleet/metrics.
	var (
		fleetView *fleet.View
		fleetFed  *fleet.Federator
	)
	if *coordAddr != "" && evlog != nil {
		fleetFed = fleet.NewFederator()
		fleetView = fleet.NewView(runID, fleetFed)
		evlog.SetMirror(fleetView.Observe)
	}
	if *serveAddr != "" {
		s := obs.NewServer(reg, sweep, evlog)
		if fleetView != nil {
			fleetView.Mount(s)
		}
		srv, err := s.Start(*serveAddr)
		if err != nil {
			return usageError(err)
		}
		// Graceful: attached /events followers end at a record boundary
		// instead of a severed connection.
		defer srv.Shutdown(2 * time.Second)
		fmt.Fprintf(os.Stderr, "experiments: observability endpoints on %s\n", srv.URL())
	}
	// lingerThenSummary runs on every return path below: the summary line
	// (computed-vs-replayed split) always prints, and with -serve the
	// endpoints stay up for -linger so scrapes can read the final state.
	lingerThenSummary := func(suite *experiments.Suite, failed int) {
		fmt.Fprintf(os.Stderr, "experiments: %d points computed, %d replayed from journal, %d experiments failed\n",
			suite.Fresh(), suite.Replayed(), failed)
		if *serveAddr != "" && *linger > 0 {
			// Harness-side wait so external scrapers can observe the final
			// /status and /metrics; never touches simulated state.
			time.Sleep(*linger) //simlint:allow wallclock
		}
	}

	// Distributed mode: fan the planned points out across the fleet and
	// land every completion in the journal, then fall through to the
	// ordinary rendering pass below — which replays each point, so the
	// tables are byte-identical to a local run. A distribution error is
	// reported but not fatal: any point the fleet failed to deliver is
	// simply simulated locally by the suite.
	if *coordAddr != "" {
		if err := distribute(*coordAddr, what, opt, *steal, reg, evlog, fleetView, fleetFed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: distributed sweep:", err)
		}
	}

	// One suite memoizes simulation points shared between experiments
	// (e.g. Figures 4-8 and Tables 3, 6). Experiments continue past an
	// individual failure so one broken point cannot sink a long sweep;
	// an interrupt stops the whole run with a resume hint.
	suite := experiments.NewSuite(opt)
	failed := 0
	for i, name := range what {
		if i > 0 {
			fmt.Println()
		}
		err := run(suite, name)
		if err == nil {
			continue
		}
		if errors.Is(err, experiments.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; completed points are flushed")
			if opt.Journal != nil {
				fmt.Fprintf(os.Stderr, "experiments: resume with the same arguments and -state %s\n", opt.Journal.Dir())
			}
			sweep.Interrupted()
			lingerThenSummary(suite, failed)
			return experiments.ExitInterrupted
		}
		failed++
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
	}
	sweep.Finish(failed)
	lingerThenSummary(suite, failed)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", failed, len(what))
		return experiments.ExitFailures
	}
	return experiments.ExitOK
}

func run(s *experiments.Suite, name string) error {
	opt := s.Opt
	switch name {
	case "table1":
		return experiments.Table1(opt)
	case "table2":
		return experiments.Table2(opt)
	case "table3":
		return s.PrintTable3()
	case "table4":
		return experiments.Table4(opt)
	case "table5":
		return s.PrintTable5()
	case "table6":
		return s.PrintTable6()
	case "table7":
		return s.PrintTable7()
	case "fig2":
		return s.PrintFig2()
	case "fig3":
		return experiments.Fig3(opt)
	case "fig4", "fig5", "fig6", "fig7", "fig8":
		var n int
		fmt.Sscanf(name, "fig%d", &n)
		return s.PrintFigFinite(n)
	case "ext-assoc":
		return experiments.ExtAssociativity(opt)
	case "ext-org":
		return experiments.ExtOrganizations(opt)
	case "ext-scaling":
		return experiments.ExtScaling(opt)
	case "ext-faults":
		return experiments.ExtFaults(opt)
	}
	return fmt.Errorf("unknown experiment %q", name)
}

// distribute runs the coordinator phase of a distributed sweep: plan
// the points the requested experiments need, drop the ones the journal
// already holds, and fan the rest out across whatever fleet connects
// (degrading to local execution if none does).
func distribute(addr string, what []string, opt experiments.Options, steal bool,
	reg *obs.Registry, evlog *obs.Log, view *fleet.View, fed *fleet.Federator) error {
	specs, err := experiments.PlanPoints(what, opt)
	if err != nil {
		return err
	}
	todo, skipped, err := experiments.FilterJournalled(opt.Journal, specs)
	if err != nil {
		return err
	}
	if len(todo) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: all %d distributable points already journalled; nothing to distribute\n", skipped)
		return nil
	}
	onResult, onFailure := experiments.CoordinatorSinks(opt.Journal)
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Steal:     steal,
		Run:       experiments.FabricRunner(opt.Journal, opt.PointTimeout, opt.Progress, nil),
		OnResult:  onResult,
		OnFailure: onFailure,
		Obs:       fabric.NewObs(reg, evlog),
		Progress:  opt.Progress,
	})
	if view != nil {
		view.SetSource(coord.FleetWorkers)
		view.SetTotal(len(todo))
	}
	if fed != nil {
		// Scrape registered workers' /metrics for the federated view while
		// the sweep runs; stops with the coordinator.
		stopPoll := make(chan struct{})
		defer close(stopPoll)
		go fed.Poll(300*time.Millisecond, coord.ObsTargets, stopPoll) //simlint:allow goroutine
	}
	ln, err := fabric.Listen(addr)
	if err != nil {
		return err
	}
	// Accept loop for the fleet; coord.Run below is the sweep's real
	// control loop, and drains this via the listener when done.
	go coord.Serve(ln) //simlint:allow goroutine
	fmt.Fprintf(os.Stderr, "experiments: coordinator on %s: distributing %d points (%d already journalled)\n",
		ln.Addr(), len(todo), skipped)
	_, err = coord.Run(todo)
	return err
}

// runWorker is the fleet-member main loop: connect, serve assignments,
// and redial with capped backoff when the coordinator is unreachable —
// a worker that outlives a coordinator restart simply rejoins. Exit 0
// on drain (sweep complete), 3 on operator interrupt.
//
// Every worker keeps a process-local event log whose point spans ship
// to the coordinator's merged fleet timeline piggybacked on fabric
// frames; -serve additionally exposes the worker's own /metrics,
// /status and /events, and advertises that address on Hello so the
// coordinator federates it. -events persists the local log as JSONL.
func runWorker(id, addr string, opt experiments.Options, stop *experiments.SignalStop, serveAddr, eventsOut string) int {
	runID := "worker-" + id
	var evlog *obs.Log
	if eventsOut != "" {
		l, err := obs.OpenLog(eventsOut, runID)
		if err != nil {
			return usageError(err)
		}
		defer l.Close()
		evlog = l
	} else {
		// Memory-only: the span source for the fleet timeline (and GET
		// /events with -serve) without any file.
		evlog = obs.NewLog(nil, runID)
	}
	var reg *obs.Registry
	if serveAddr != "" {
		reg = obs.NewRegistry()
	}
	sweep := obs.NewSweep(runID, reg, evlog)
	sweep.SetIdentity("worker "+id, opt.Procs, opt.Size.String())
	spans := fleet.NewSpanBuffer()
	evlog.SetMirror(spans.Observe)
	obsAddr := ""
	if serveAddr != "" {
		srv, err := obs.NewServer(reg, sweep, evlog).Start(serveAddr)
		if err != nil {
			return usageError(err)
		}
		defer srv.Shutdown(2 * time.Second)
		obsAddr = srv.URL()
		fmt.Fprintf(os.Stderr, "experiments: worker %s: observability endpoints on %s\n", id, obsAddr)
	}
	// Span shipment with overflow accounting: when the buffer's
	// drop-oldest cap fired since the last drain, the batch carries a
	// fabric-span-drop marker so the merged timeline admits its gap.
	var dropsReported atomic.Uint64
	spanSource := func(max int) []obs.Event {
		batch := spans.Drain(max)
		for {
			d := spans.Dropped()
			seen := dropsReported.Load()
			if d <= seen {
				return batch
			}
			if dropsReported.CompareAndSwap(seen, d) {
				return append(batch, obs.Event{Kind: fabric.EventSpanDrop, Worker: id, Run: runID,
					Detail: fmt.Sprintf("dropped=%d", d-seen)})
			}
		}
	}
	w := fabric.NewWorker(fabric.WorkerConfig{
		ID:       id,
		Run:      experiments.FabricRunner(opt.Journal, opt.PointTimeout, opt.Progress, sweep),
		Progress: os.Stderr,
		ObsAddr:  obsAddr,
		Spans:    spanSource,
	})
	backoff := time.Second
	attempt := 0
	for {
		if stop.Stopped() {
			return experiments.ExitInterrupted
		}
		conn, err := fabric.Dial(addr)
		if err == nil {
			backoff, attempt = time.Second, 0
			err = w.RunConn(conn)
			if err == nil {
				sweep.Finish(0)
				fmt.Fprintf(os.Stderr, "experiments: worker %s: sweep complete\n", id)
				return experiments.ExitOK
			}
		}
		attempt++
		// Structured redial record: shipped with the next span batch, so
		// fleet timelines show the worker's connectivity gaps.
		evlog.Emit(obs.Event{Kind: fabric.EventRedial, Worker: id,
			Detail: fmt.Sprintf("coordinator=%s attempt=%d backoff=%v", addr, attempt, backoff),
			Error:  err.Error()})
		fmt.Fprintf(os.Stderr, "experiments: worker %s: %v (coordinator %s, attempt %d, redialing in %v)\n",
			id, err, addr, attempt, backoff)
		// Harness-side reconnect pacing; interrupt is checked each lap.
		time.Sleep(backoff) //simlint:allow wallclock
		if backoff *= 2; backoff > 30*time.Second {
			backoff = 30 * time.Second
		}
	}
}

func usageError(err error) int {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	return experiments.ExitUsage
}

// usageText is the -h / no-argument usage header. It documents every
// exit code the process can return, so scripts and CI need not read
// the source (pinned by TestUsageMentionsExitCodes).
func usageText() string {
	return `usage: experiments [flags] <table1..table7|fig2..fig8|ext-assoc|ext-org|ext-scaling|ext-faults|all>...

distributed sweeps (see README "Distributed sweeps"):
  coordinator:  experiments -coordinator :7600 -state DIR <what>...
  worker:       experiments -worker w1 -connect host:7600 [-state DIR]

exit codes:
  0  every requested experiment completed (worker: sweep drained)
  1  at least one point or experiment failed; the rest ran
  2  bad flags or configuration
  3  SIGINT/SIGTERM (or -stop-after) stopped the suite between points
  4  -point-timeout aborted a hung point

flags:
`
}
