// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] <what>...
//
// where <what> is any of: table1 table2 table3 table4 table5 table6
// table7 fig2 fig3 fig4 fig5 fig6 fig7 fig8, or "all".
//
// By default the runs use the scaled default problem sizes on the
// paper's 64-processor machine; -size paper selects the full Table 2
// problem sizes (slower), and -procs shrinks the machine for quick
// looks.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersim/internal/apps"
	"clustersim/internal/experiments"
)

func main() {
	var (
		procs    = flag.Int("procs", 64, "total processors")
		size     = flag.String("size", "default", "problem size: test, default or paper")
		quantum  = flag.Int64("quantum", 0, "event-ordering slack in cycles (0 = exact)")
		sanitize = flag.Bool("sanitize", false, "cross-validate directory/cache state after every transaction (requires -quantum 0)")
		bars     = flag.Bool("bars", false, "render figures as ASCII stacked bars")
		csvOut   = flag.Bool("csv", false, "emit figure data as CSV rows")
		progress = flag.Bool("progress", false, "log each completed simulation point to stderr")
		sample   = flag.Int64("sample", 0, "telemetry sampling interval in cycles (0 = off)")
		traceDir = flag.String("trace", "", "write one Chrome trace-event JSON per run into this directory")
		profDir  = flag.String("profile", "", "write one sharing-profile JSON per run into this directory")
		profTop  = flag.Int("top", 10, "hot cache lines to rank in each sharing profile")
		jsonOut  = flag.String("json", "", "append one JSON run manifest per line (JSONL) to this file")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table1..table7|fig2..fig8|ext-assoc|ext-org|all>...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *sample < 0 {
		fatal(fmt.Errorf("-sample %d: interval must be non-negative", *sample))
	}
	opt := experiments.DefaultOptions()
	opt.Procs = *procs
	opt.Quantum = *quantum
	opt.Sanitize = *sanitize
	opt.Bars = *bars
	opt.CSV = *csvOut
	opt.SampleEvery = *sample
	opt.TraceDir = *traceDir
	opt.ProfileDir = *profDir
	opt.ProfileTop = *profTop
	if *progress {
		opt.Progress = os.Stderr
	}
	if *jsonOut != "" {
		f, err := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opt.ManifestOut = f
	}
	switch *size {
	case "test":
		opt.Size = apps.SizeTest
	case "default":
		opt.Size = apps.SizeDefault
	case "paper":
		opt.Size = apps.SizePaper
	default:
		fatal(fmt.Errorf("unknown size %q", *size))
	}

	what := flag.Args()
	if len(what) == 1 && what[0] == "all" {
		what = []string{"table1", "table2", "table3", "table4", "table5",
			"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table6", "table7",
			"ext-assoc", "ext-org", "ext-scaling"}
	}
	// One suite memoizes simulation points shared between experiments
	// (e.g. Figures 4-8 and Tables 3, 6).
	suite := experiments.NewSuite(opt)
	for i, name := range what {
		if i > 0 {
			fmt.Println()
		}
		if err := run(suite, name); err != nil {
			fatal(err)
		}
	}
}

func run(s *experiments.Suite, name string) error {
	opt := s.Opt
	switch name {
	case "table1":
		return experiments.Table1(opt)
	case "table2":
		return experiments.Table2(opt)
	case "table3":
		return s.PrintTable3()
	case "table4":
		return experiments.Table4(opt)
	case "table5":
		return s.PrintTable5()
	case "table6":
		return s.PrintTable6()
	case "table7":
		return s.PrintTable7()
	case "fig2":
		return s.PrintFig2()
	case "fig3":
		return experiments.Fig3(opt)
	case "fig4", "fig5", "fig6", "fig7", "fig8":
		var n int
		fmt.Sscanf(name, "fig%d", &n)
		return s.PrintFigFinite(n)
	case "ext-assoc":
		return experiments.ExtAssociativity(opt)
	case "ext-org":
		return experiments.ExtOrganizations(opt)
	case "ext-scaling":
		return experiments.ExtScaling(opt)
	}
	return fmt.Errorf("unknown experiment %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
