package main

import (
	"fmt"
	"strings"
	"testing"

	"clustersim/internal/experiments"
)

// TestUsageMentionsExitCodes: every exit code the process can return
// is documented in the -h / no-argument usage text, so scripts and CI
// can rely on the contract without reading the source.
func TestUsageMentionsExitCodes(t *testing.T) {
	usage := usageText()
	codes := []struct {
		code   int
		phrase string
	}{
		{experiments.ExitOK, "every requested experiment completed"},
		{experiments.ExitFailures, "failed"},
		{experiments.ExitUsage, "bad flags"},
		{experiments.ExitInterrupted, "SIGINT"},
		{experiments.ExitWatchdog, "-point-timeout"},
	}
	for i, c := range codes {
		if c.code != i {
			t.Errorf("exit code %d listed out of order (got %d)", i, c.code)
		}
	}
	for _, c := range codes {
		code, phrase := c.code, c.phrase
		line := fmt.Sprintf("%d  ", code)
		if !strings.Contains(usage, line) {
			t.Errorf("usage does not list exit code %d:\n%s", code, usage)
		}
		if !strings.Contains(usage, phrase) {
			t.Errorf("usage does not explain exit code %d (%q):\n%s", code, phrase, usage)
		}
	}
	if !strings.Contains(usage, "usage: experiments") {
		t.Errorf("usage missing synopsis:\n%s", usage)
	}
}
