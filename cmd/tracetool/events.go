package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"clustersim/internal/obs"
)

// eventsCmd renders a run-event log (the JSONL written by experiments
// -events, schema clustersim/events/v1):
//
//	tracetool events [-point NAME] [-kind KIND] [-worker ID] [-f] <events.jsonl>
//
// -point, -kind and -worker filter (a coordinator's merged log carries
// every fleet member's spans, so -worker isolates one machine's story);
// -f keeps polling the file and renders new events as the sweep appends
// them (a schema-aware tail -f).
func eventsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	point := fs.String("point", "", "only events of this point (e.g. ocean-c4-16k)")
	kind := fs.String("kind", "", "only events of this kind (e.g. point-done)")
	worker := fs.String("worker", "", "only events of this fleet worker (e.g. w1)")
	follow := fs.Bool("f", false, "keep polling the file and render events as they are appended")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("events: want one events.jsonl, got %d args", fs.NArg())
	}
	path := fs.Arg(0)

	var base int64 // first event's wall stamp anchors the offset column
	var lastSeq uint64
	render := func() (int, error) {
		evs, err := readEventsFile(path)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, e := range evs {
			if e.Seq <= lastSeq {
				continue
			}
			lastSeq = e.Seq
			if base == 0 {
				base = e.WallUnixNS
			}
			if *point != "" && e.Point != *point {
				continue
			}
			if *kind != "" && e.Kind != *kind {
				continue
			}
			if *worker != "" && e.Worker != *worker {
				continue
			}
			writeEventRow(out, e, base)
			n++
		}
		return n, nil
	}

	if _, err := render(); err != nil {
		return err
	}
	if !*follow {
		return nil
	}
	for {
		// Poll cadence for the live tail; host-side only.
		time.Sleep(500 * time.Millisecond) //simlint:allow wallclock
		if _, err := render(); err != nil {
			return err
		}
	}
}

// readEventsFile decodes and schema-validates one events JSONL file.
// The whole file is re-read per poll: the O_APPEND single-write-per-
// line discipline means a growing file is always a valid prefix, and
// event logs are small (one line per point transition).
func readEventsFile(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

func writeEventRow(out io.Writer, e obs.Event, base int64) {
	off := time.Duration(e.WallUnixNS - base).Round(time.Millisecond)
	note := e.Detail
	if e.Error != "" {
		note = e.Error
	}
	switch {
	case e.DurNS > 0 && e.VirtCycles > 0:
		note = fmt.Sprintf("wall %v, %d cycles", time.Duration(e.DurNS).Round(time.Millisecond), e.VirtCycles)
	case e.DurNS > 0:
		note = fmt.Sprintf("wall %v  %s", time.Duration(e.DurNS).Round(time.Millisecond), note)
	case e.VirtCycles > 0:
		note = fmt.Sprintf("%d cycles  %s", e.VirtCycles, note)
	}
	if e.Worker != "" {
		fmt.Fprintf(out, "%6d  +%-10v %-16s %-8s %-24s %s\n", e.Seq, off, e.Kind, e.Worker, e.Point, note)
		return
	}
	fmt.Fprintf(out, "%6d  +%-10v %-16s %-24s %s\n", e.Seq, off, e.Kind, e.Point, note)
}

// metricsCmd validates a Prometheus text exposition — a saved GET
// /metrics response, or stdin with "-" — and reports its shape. CI's
// observability smoke pipes the scraped endpoint through this:
//
//	curl -s localhost:9090/metrics | tracetool metrics -
func metricsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("metrics: want one exposition file (or - for stdin), got %d args", fs.NArg())
	}
	var r io.Reader
	name := fs.Arg(0)
	if name == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	st, err := obs.ParseExposition(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Fprintf(out, "%s: valid exposition: %d metric families, %d series\n", name, st.Families, st.Series)
	return nil
}
