package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"clustersim/internal/obs"
	"clustersim/internal/obs/fleet"
)

// fleetCmd renders fleet observability artifacts:
//
//	tracetool fleet <fleet.json>                       render a GET /fleet doc
//	tracetool fleet -timeline POINT <events.jsonl>     one point's merged timeline
//	tracetool fleet -chrome out.json <events.jsonl>    Chrome trace, one track per worker
//
// The fleet doc (schema clustersim/fleet/v1) is the coordinator's
// aggregated status; the events JSONL is the coordinator's merged log
// (-events), whose worker spans carry each point's trace ID. -timeline
// accepts a point name or a trace ID. The Chrome export opens in
// chrome://tracing or Perfetto: coordinator events on their own track,
// each worker's spans on its own, point spans as slices.
func fleetCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	timeline := fs.String("timeline", "", "render one point's merged timeline (point name or trace ID) from an events JSONL")
	chrome := fs.String("chrome", "", "write a Chrome trace-event JSON of the fleet timeline to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("fleet: want one input file, got %d args", fs.NArg())
	}
	path := fs.Arg(0)
	switch {
	case *timeline != "":
		return fleetTimeline(*timeline, path, out)
	case *chrome != "":
		return fleetChrome(path, *chrome, out)
	default:
		return fleetDoc(path, out)
	}
}

// fleetDoc validates and renders a saved GET /fleet document.
func fleetDoc(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var doc fleet.Doc
	dec := json.NewDecoder(f)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != fleet.SchemaV1 {
		return fmt.Errorf("%s: unknown fleet schema %q (want %s)", path, doc.Schema, fleet.SchemaV1)
	}
	fmt.Fprintf(out, "fleet %s (schema %s)\n", doc.Run, doc.Schema)
	t := doc.Totals
	fmt.Fprintf(out, "totals: %d workers (%d live), %d points (%d assigned): %d done, %d replayed, %d failed; %d events\n",
		t.Workers, t.Live, t.Points, t.Assigned, t.Done, t.Replayed, t.Failed, t.Events)
	eta := doc.ETA
	if eta.HaveRemaining {
		fmt.Fprintf(out, "eta: %d/%d points, mean %v/point, ~%v remaining\n",
			eta.DonePoints, eta.TotalPoints,
			time.Duration(eta.MeanPointMS)*time.Millisecond,
			time.Duration(eta.RemainingMS)*time.Millisecond)
	} else {
		fmt.Fprintf(out, "eta: %d/%d points\n", eta.DonePoints, eta.TotalPoints)
	}
	fmt.Fprintf(out, "%-10s %-5s %-6s %-8s %5s %8s %6s %4s %6s  %-18s %s\n",
		"worker", "alive", "leases", "hb-age", "done", "replayed", "failed", "dups", "spans", "last-span", "obs-url")
	for _, w := range doc.Workers {
		alive := "no"
		if w.Alive {
			alive = "yes"
		}
		hb := "-"
		if w.Alive {
			hb = (time.Duration(w.HeartbeatAgeMS) * time.Millisecond).String()
		}
		note := w.ObsURL
		if w.ScrapeError != "" {
			note += " (scrape error: " + w.ScrapeError + ")"
		}
		fmt.Fprintf(out, "%-10s %-5s %-6d %-8s %5d %8d %6d %4d %6d  %-18s %s\n",
			w.Worker, alive, w.LeasesHeld, hb, w.Done, w.Replayed, w.Failed, w.Duplicates, w.Spans, w.LastSpan, note)
	}
	return nil
}

// fleetTimeline renders one point's merged cross-process timeline from
// a coordinator events JSONL, selected by point name or trace ID.
func fleetTimeline(pointOrTrace, path string, out io.Writer) error {
	evs, err := readEventsFile(path)
	if err != nil {
		return err
	}
	var rows []obs.Event
	var base int64
	for _, e := range evs {
		if base == 0 {
			base = e.WallUnixNS
		}
		if e.Point == pointOrTrace || (e.Trace != "" && e.Trace == pointOrTrace) {
			rows = append(rows, e)
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no events for point or trace %q", path, pointOrTrace)
	}
	trace := ""
	for _, e := range rows {
		if e.Trace != "" {
			trace = e.Trace
			break
		}
	}
	fmt.Fprintf(out, "timeline of %s (trace %s): %d events\n", rows[0].Point, trace, len(rows))
	for _, e := range rows {
		writeEventRow(out, e, base)
	}
	return nil
}

// chromeEvent is one Chrome trace-event record (the subset we emit).
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// fleetChrome exports a merged fleet events JSONL as a Chrome
// trace-event file: one track ("thread") per fleet identity — the
// coordinator plus each worker — with span-shaped events as slices and
// the rest as instants. Open in chrome://tracing or Perfetto.
func fleetChrome(path, outFile string, out io.Writer) error {
	evs, err := readEventsFile(path)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: empty events log", path)
	}
	base := evs[0].WallUnixNS
	tids := map[string]int{"coordinator": 0}
	tidOrder := []string{"coordinator"}
	tidFor := func(worker string) int {
		if worker == "" {
			return 0
		}
		id, ok := tids[worker]
		if !ok {
			id = len(tidOrder)
			tids[worker] = id
			tidOrder = append(tidOrder, worker)
		}
		return id
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var ces []chromeEvent
	type openKey struct {
		point, worker string
	}
	open := make(map[openKey]obs.Event)
	for _, e := range evs {
		tid := tidFor(e.Worker)
		args := map[string]string{"kind": e.Kind}
		if e.Trace != "" {
			args["trace"] = e.Trace
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if e.Error != "" {
			args["error"] = e.Error
		}
		name := e.Kind
		if e.Point != "" {
			name = e.Point + " " + e.Kind
		}
		switch {
		case e.Span == obs.SpanBegin && e.Point != "":
			open[openKey{e.Point, e.Worker}] = e
		case e.Span == obs.SpanEnd && e.Point != "":
			k := openKey{e.Point, e.Worker}
			if b, ok := open[k]; ok {
				delete(open, k)
				ces = append(ces, chromeEvent{
					Name: e.Point, Phase: "X", TS: us(b.WallUnixNS),
					Dur: us(e.WallUnixNS) - us(b.WallUnixNS), PID: 1, TID: tid, Args: args,
				})
			} else if e.DurNS > 0 {
				// End without a recorded begin (span shipped without its
				// opener): reconstruct the slice from the carried duration.
				ces = append(ces, chromeEvent{
					Name: e.Point, Phase: "X", TS: us(e.WallUnixNS - e.DurNS),
					Dur: float64(e.DurNS) / 1e3, PID: 1, TID: tid, Args: args,
				})
			} else {
				ces = append(ces, chromeEvent{
					Name: name, Phase: "i", TS: us(e.WallUnixNS), PID: 1, TID: tid, Scope: "t", Args: args,
				})
			}
		default:
			ces = append(ces, chromeEvent{
				Name: name, Phase: "i", TS: us(e.WallUnixNS), PID: 1, TID: tid, Scope: "t", Args: args,
			})
		}
	}
	// Name the tracks: metadata events Chrome reads for thread labels.
	meta := make([]chromeEvent, 0, len(tidOrder))
	for i, label := range tidOrder {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: i,
			Args: map[string]string{"name": label},
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: append(meta, ces...)}
	f, err := os.Create(outFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d trace events (%d tracks) to %s\n", len(ces), len(tidOrder), outFile)
	return nil
}
