// Command tracetool records application reference traces and replays
// them through different machine configurations — the trace-driven mode
// of Tango-lite.
//
// Record a trace:
//
//	tracetool record -app radix -procs 16 -size test -o radix.trace
//
// Replay it through other machines:
//
//	tracetool replay -i radix.trace -cluster 4 -cache 8
//	tracetool replay -i radix.trace -cluster 8 -org shared-memory
//
// Trace-driven replay fixes the original interleaving, so it is a fast
// approximation best suited to cache-capacity questions; see the trace
// package documentation.
//
// Summarize a telemetry trace (the Chrome trace-event files written by
// clustersim -trace and experiments -trace):
//
//	tracetool telemetry -i out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/telemetry"
	"clustersim/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "telemetry":
		telemetrySummary(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool record|replay|telemetry [flags]")
	os.Exit(2)
}

// telemetrySummary digests a Chrome trace-event file written by the
// telemetry exporter (clustersim -trace / experiments -trace):
//
//	tracetool telemetry -i out.json
func telemetrySummary(args []string) {
	fs := flag.NewFlagSet("telemetry", flag.ExitOnError)
	in := fs.String("i", "out.json", "input Chrome trace-event JSON file")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sum, err := telemetry.SummarizeChromeTrace(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d events, %d PE tracks, horizon %d cycles\n",
		*in, sum.Events, sum.PEs, sum.LastTs)
	if len(sum.OtherData) > 0 {
		keys := make([]string, 0, len(sum.OtherData))
		for k := range sum.OtherData {
			keys = append(keys, k) //simlint:allow maprange
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-12s %s\n", k, sum.OtherData[k])
		}
	}
	var kinds []string
	var total int64
	for k, v := range sum.ByKind {
		kinds = append(kinds, k) //simlint:allow maprange
		total += v
	}
	sort.Strings(kinds)
	fmt.Println("PE cycles by state:")
	for _, k := range kinds {
		v := sum.ByKind[k]
		fmt.Printf("  %-12s %14d cycles (%5.1f%%)\n", k, v, 100*float64(v)/float64(total))
	}
	fmt.Printf("sync episodes:   %d\n", sum.SyncWaits)
	fmt.Printf("counter samples: %d\n", sum.Counters)
	if len(sum.Marks) > 0 {
		fmt.Printf("marks:           %s\n", strings.Join(sum.Marks, ", "))
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "radix", "application to trace")
	procs := fs.Int("procs", 16, "total processors")
	cluster := fs.Int("cluster", 1, "processors per cluster during recording")
	size := fs.String("size", "test", "problem size: test, default or paper")
	out := fs.String("o", "app.trace", "output trace file")
	fs.Parse(args)

	sz, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}
	w, err := registry.Lookup(*app)
	if err != nil {
		fatal(err)
	}
	col := trace.NewCollector(*procs)
	cfg := core.DefaultConfig()
	cfg.Procs = *procs
	cfg.ClusterSize = *cluster
	cfg.Tracer = col
	if _, err := w.Run(cfg, sz); err != nil {
		fatal(err)
	}
	tr := col.Finish()
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d events (%d regions, %d sync objects) to %s\n",
		len(tr.Events), len(tr.Regions), len(tr.Syncs), *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "app.trace", "input trace file")
	cluster := fs.Int("cluster", 1, "processors per cluster")
	cacheKB := fs.Int("cache", 0, "cache KB per processor (0 = infinite)")
	org := fs.String("org", "shared-cache", "cluster organization: shared-cache or shared-memory")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Procs = tr.Procs
	cfg.ClusterSize = *cluster
	cfg.CacheKBPerProc = *cacheKB
	switch *org {
	case "shared-cache":
		cfg.Organization = core.SharedCache
	case "shared-memory":
		cfg.Organization = core.SharedMemory
	default:
		fatal(fmt.Errorf("unknown organization %q", *org))
	}
	res, err := trace.Replay(cfg, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d events\n", len(tr.Events))
	res.WriteSummary(os.Stdout)
}

func parseSize(s string) (apps.Size, error) {
	switch s {
	case "test":
		return apps.SizeTest, nil
	case "default":
		return apps.SizeDefault, nil
	case "paper":
		return apps.SizePaper, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(2)
}
