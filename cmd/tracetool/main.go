// Command tracetool records application reference traces and replays
// them through different machine configurations — the trace-driven mode
// of Tango-lite.
//
// Record a trace:
//
//	tracetool record -app radix -procs 16 -size test -o radix.trace
//
// Replay it through other machines:
//
//	tracetool replay -i radix.trace -cluster 4 -cache 8
//	tracetool replay -i radix.trace -cluster 8 -org shared-memory
//
// Trace-driven replay fixes the original interleaving, so it is a fast
// approximation best suited to cache-capacity questions; see the trace
// package documentation.
//
// Summarize a telemetry trace (the Chrome trace-event files written by
// clustersim -trace and experiments -trace):
//
//	tracetool telemetry -i out.json
//
// Render a sharing profile (the JSON written by clustersim -profile),
// or the per-region delta between two profiles (new minus old):
//
//	tracetool profile out.json
//	tracetool profile -top 20 before.json after.json
//
// Render a critical-path analysis (the JSON written by clustersim
// -critpath), or the per-phase delta between two (new minus old):
//
//	tracetool critpath out.json
//	tracetool critpath before.json after.json
//
// Render a benchmark report (the BENCH_<stamp>.json written by
// perfbench), or the regression diff between two (cur against base):
//
//	tracetool bench BENCH_a.json
//	tracetool bench BENCH_a.json BENCH_b.json
//
// Render a run-event log (the JSONL written by experiments -events),
// optionally filtered by point or kind, or live-tailed with -f; and
// validate a Prometheus exposition scraped from a -serve endpoint:
//
//	tracetool events sweep.events.jsonl
//	tracetool events -point ocean-c4-16k -worker w1 -f sweep.events.jsonl
//	curl -s localhost:9090/metrics | tracetool metrics -
//
// Render fleet observability artifacts from a distributed sweep — the
// GET /fleet status document, one point's merged cross-process
// timeline, or a Chrome trace with one track per fleet member:
//
//	tracetool fleet fleet.json
//	tracetool fleet -timeline ocean-c4-inf coordinator.events.jsonl
//	tracetool fleet -chrome fleet-trace.json coordinator.events.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/bench"
	"clustersim/internal/core"
	"clustersim/internal/critpath"
	"clustersim/internal/profile"
	"clustersim/internal/telemetry"
	"clustersim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(2)
	}
}

// run dispatches one subcommand. Every failure — unknown subcommand,
// missing input, unparseable file — surfaces as a non-nil error so the
// process exits nonzero.
func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return usageError()
	}
	switch args[0] {
	case "record":
		return record(args[1:], out)
	case "replay":
		return replay(args[1:], out)
	case "telemetry":
		return telemetrySummary(args[1:], out)
	case "profile":
		return profileCmd(args[1:], out)
	case "critpath":
		return critpathCmd(args[1:], out)
	case "bench":
		return benchCmd(args[1:], out)
	case "events":
		return eventsCmd(args[1:], out)
	case "metrics":
		return metricsCmd(args[1:], out)
	case "fleet":
		return fleetCmd(args[1:], out)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: tracetool record|replay|telemetry|profile|critpath|bench|events|metrics|fleet [flags]")
}

// benchCmd renders one perfbench report as a table, or the regression
// diff of two (current against baseline):
//
//	tracetool bench [-tolerance 0.05] <BENCH.json> [cur.json]
func benchCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	tol := fs.Float64("tolerance", 0.05, "accepted fractional growth of allocations when diffing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch fs.NArg() {
	case 1:
		r, err := readBench(fs.Arg(0))
		if err != nil {
			return err
		}
		bench.WriteTable(out, r)
		return nil
	case 2:
		base, err := readBench(fs.Arg(0))
		if err != nil {
			return err
		}
		cur, err := readBench(fs.Arg(1))
		if err != nil {
			return err
		}
		deltas, regressions := bench.Compare(base, cur, bench.Tolerance{Allocs: *tol})
		bench.WriteDiff(out, base, cur, deltas, regressions)
		if regressions > 0 {
			return fmt.Errorf("bench: %d regression(s)", regressions)
		}
		return nil
	default:
		return fmt.Errorf("bench: want one BENCH.json (render) or two (diff base cur), got %d args", fs.NArg())
	}
}

func readBench(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := bench.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// profileCmd renders one sharing profile as the flat table, or diffs
// two (new minus old):
//
//	tracetool profile [-top N] <profile.json> [new.json]
func profileCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	top := fs.Int("top", 0, "re-rank to the top N hot lines (0 = keep the file's ranking)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch fs.NArg() {
	case 1:
		r, err := readProfile(fs.Arg(0))
		if err != nil {
			return err
		}
		if *top > 0 && len(r.HotLines) > *top {
			r.HotLines = r.HotLines[:*top]
		}
		profile.WriteFlat(out, r)
		return nil
	case 2:
		old, err := readProfile(fs.Arg(0))
		if err != nil {
			return err
		}
		cur, err := readProfile(fs.Arg(1))
		if err != nil {
			return err
		}
		profile.WriteDiff(out, old, cur)
		return nil
	default:
		return fmt.Errorf("profile: want one profile.json (render) or two (diff old new), got %d args", fs.NArg())
	}
}

func readProfile(path string) (*profile.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := profile.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// critpathCmd renders one critical-path analysis as the flat report, or
// diffs two (new minus old):
//
//	tracetool critpath <critpath.json> [new.json]
func critpathCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("critpath", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch fs.NArg() {
	case 1:
		r, err := readCritpath(fs.Arg(0))
		if err != nil {
			return err
		}
		critpath.WriteFlat(out, r)
		return nil
	case 2:
		old, err := readCritpath(fs.Arg(0))
		if err != nil {
			return err
		}
		cur, err := readCritpath(fs.Arg(1))
		if err != nil {
			return err
		}
		critpath.WriteDiff(out, old, cur)
		return nil
	default:
		return fmt.Errorf("critpath: want one critpath.json (render) or two (diff old new), got %d args", fs.NArg())
	}
}

func readCritpath(path string) (*critpath.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := critpath.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// telemetrySummary digests a Chrome trace-event file written by the
// telemetry exporter (clustersim -trace / experiments -trace):
//
//	tracetool telemetry -i out.json
func telemetrySummary(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("telemetry", flag.ContinueOnError)
	in := fs.String("i", "out.json", "input Chrome trace-event JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := telemetry.SummarizeChromeTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	fmt.Fprintf(out, "%s: %d events, %d PE tracks, horizon %d cycles\n",
		*in, sum.Events, sum.PEs, sum.LastTs)
	if len(sum.OtherData) > 0 {
		keys := make([]string, 0, len(sum.OtherData))
		for k := range sum.OtherData {
			keys = append(keys, k) //simlint:allow maprange
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(out, "  %-12s %s\n", k, sum.OtherData[k])
		}
	}
	var kinds []string
	var total int64
	for k, v := range sum.ByKind {
		kinds = append(kinds, k) //simlint:allow maprange
		total += v
	}
	sort.Strings(kinds)
	fmt.Fprintln(out, "PE cycles by state:")
	for _, k := range kinds {
		v := sum.ByKind[k]
		fmt.Fprintf(out, "  %-12s %14d cycles (%5.1f%%)\n", k, v, 100*float64(v)/float64(total))
	}
	fmt.Fprintf(out, "sync episodes:   %d\n", sum.SyncWaits)
	fmt.Fprintf(out, "counter samples: %d\n", sum.Counters)
	if len(sum.Marks) > 0 {
		fmt.Fprintf(out, "marks:           %s\n", strings.Join(sum.Marks, ", "))
	}
	return nil
}

func record(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	app := fs.String("app", "radix", "application to trace")
	procs := fs.Int("procs", 16, "total processors")
	cluster := fs.Int("cluster", 1, "processors per cluster during recording")
	size := fs.String("size", "test", "problem size: test, default or paper")
	outFile := fs.String("o", "app.trace", "output trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sz, err := parseSize(*size)
	if err != nil {
		return err
	}
	w, err := registry.Lookup(*app)
	if err != nil {
		return err
	}
	col := trace.NewCollector(*procs)
	cfg := core.DefaultConfig()
	cfg.Procs = *procs
	cfg.ClusterSize = *cluster
	cfg.Tracer = col
	if _, err := w.Run(cfg, sz); err != nil {
		return err
	}
	tr := col.Finish()
	f, err := os.Create(*outFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d events (%d regions, %d sync objects) to %s\n",
		len(tr.Events), len(tr.Regions), len(tr.Syncs), *outFile)
	return nil
}

func replay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	in := fs.String("i", "app.trace", "input trace file")
	cluster := fs.Int("cluster", 1, "processors per cluster")
	cacheKB := fs.Int("cache", 0, "cache KB per processor (0 = infinite)")
	org := fs.String("org", "shared-cache", "cluster organization: shared-cache or shared-memory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	cfg := core.DefaultConfig()
	cfg.Procs = tr.Procs
	cfg.ClusterSize = *cluster
	cfg.CacheKBPerProc = *cacheKB
	switch *org {
	case "shared-cache":
		cfg.Organization = core.SharedCache
	case "shared-memory":
		cfg.Organization = core.SharedMemory
	default:
		return fmt.Errorf("unknown organization %q", *org)
	}
	res, err := trace.Replay(cfg, tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d events\n", len(tr.Events))
	res.WriteSummary(out)
	return nil
}

func parseSize(s string) (apps.Size, error) {
	switch s {
	case "test":
		return apps.SizeTest, nil
	case "default":
		return apps.SizeDefault, nil
	case "paper":
		return apps.SizePaper, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}
