package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clustersim/internal/bench"
	"clustersim/internal/critpath"
	"clustersim/internal/obs"
	"clustersim/internal/profile"
	"clustersim/internal/stats"
)

// Every subcommand must report missing or unparseable inputs as errors
// (the process then exits nonzero) instead of succeeding silently.
func TestBadInputsError(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json at all {"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "does-not-exist")

	cases := [][]string{
		{},
		{"frobnicate"},
		{"replay", "-i", missing},
		{"replay", "-i", garbage},
		{"telemetry", "-i", missing},
		{"telemetry", "-i", garbage},
		{"profile", missing},
		{"profile", garbage},
		{"profile"},                            // no input at all
		{"profile", garbage, garbage, garbage}, // too many
		{"record", "-app", "no-such-app"},
		{"record", "-size", "enormous"},
		{"bench"},
		{"bench", missing},
		{"bench", garbage},
		{"bench", garbage, garbage, garbage}, // too many
		{"critpath", missing},
		{"critpath", garbage},
		{"critpath"},                            // no input at all
		{"critpath", garbage, garbage, garbage}, // too many
		{"events", missing},
		{"events", garbage},
		{"events"},                   // no input at all
		{"events", garbage, garbage}, // too many
		{"metrics", missing},
		{"metrics", garbage},
		{"metrics"},                   // no input at all
		{"metrics", garbage, garbage}, // too many
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// Errors about a file name the file, so a user with several inputs can
// tell which one is bad.
func TestErrorsNameTheFile(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "mangled.json")
	if err := os.WriteFile(garbage, []byte(`{"schema":"wrong/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"profile", garbage}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "mangled.json") {
		t.Errorf("error %v does not name the bad file", err)
	}
}

func writeTestProfile(t *testing.T, path string, misses uint64) {
	t.Helper()
	r := &profile.Report{
		Schema:    profile.SchemaV1,
		App:       "mp3d",
		Size:      "test",
		LineBytes: 64,
		WordBytes: 8,
		PageBytes: 4096,
		Clusters:  4,
		Regions: []profile.RegionReport{
			{Name: "particles", Misses: profile.ClassCounts{Cold: misses, FalseSharing: 2}},
			{Name: "cells", Misses: profile.ClassCounts{TrueSharing: 1}},
		},
		HotLines: []profile.LineReport{
			{Line: 0x100, Addr: 0x4000, Region: "particles", Misses: profile.ClassCounts{Cold: misses}},
		},
	}
	r.Totals.Misses = profile.ClassCounts{Cold: misses, TrueSharing: 1, FalseSharing: 2}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := profile.WriteReport(f, r); err != nil {
		t.Fatal(err)
	}
}

// `tracetool profile one.json` renders the flat table; with two inputs
// it renders the per-region delta.
func TestProfileRenderAndDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeTestProfile(t, a, 5)
	writeTestProfile(t, b, 9)

	var flat bytes.Buffer
	if err := run([]string{"profile", a}, &flat); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"particles", "cells", "classified misses", "hot lines"} {
		if !strings.Contains(flat.String(), want) {
			t.Errorf("flat output missing %q:\n%s", want, flat.String())
		}
	}

	var diff bytes.Buffer
	if err := run([]string{"profile", a, b}, &diff); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff.String(), "Δmisses +4") {
		t.Errorf("diff output missing the +4 cold-miss delta:\n%s", diff.String())
	}
}

func writeTestCritpath(t *testing.T, path string, execTime int64) {
	t.Helper()
	r := &critpath.Report{
		Schema:        critpath.SchemaV1,
		App:           "ocean",
		Size:          "test",
		Procs:         8,
		Clusters:      4,
		ExecTime:      execTime,
		IdealExecTime: execTime - 100,
		Phases: []critpath.PhaseReport{
			{Index: 0, Name: "ocean.main#1", SyncID: 0, Start: 0, End: execTime,
				LastArriver: 3, ImbalanceCycles: 70,
				Aggregate: stats.Breakdown{CPU: 6 * execTime, SyncWait: 2 * execTime},
				PerPE:     make([]stats.Breakdown, 8)},
		},
		Barriers: []critpath.BarrierReport{
			{Name: "ocean.main", ID: 0, Participants: 8, Episodes: 1, WaitCycles: 70, MaxWait: 40,
				LastArrivers: []critpath.PECount{{PE: 3, Count: 1}}},
		},
		Locks: []critpath.LockReport{
			{Name: "errsum", ID: 1, Acquisitions: 8, Contended: 7, HoldCycles: 700,
				WaitCycles: 2000, MaxWait: 460, MaxQueueDepth: 6},
		},
		LocksTotal:   1,
		CriticalPath: []critpath.PathLink{{Phase: 0, PE: 3, SpanCycles: execTime}},
		LastArrivers: []critpath.PECount{{PE: 3, Count: 1}},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := critpath.WriteReport(f, r); err != nil {
		t.Fatal(err)
	}
}

// `tracetool critpath one.json` renders the flat report; with two
// inputs it renders the per-phase delta.
func TestCritpathRenderAndDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeTestCritpath(t, a, 5000)
	writeTestCritpath(t, b, 5400)

	var flat bytes.Buffer
	if err := run([]string{"critpath", a}, &flat); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path: ocean", "ocean.main#1", "errsum", "barriers"} {
		if !strings.Contains(flat.String(), want) {
			t.Errorf("flat output missing %q:\n%s", want, flat.String())
		}
	}

	var diff bytes.Buffer
	if err := run([]string{"critpath", a, b}, &diff); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff.String(), "Δexec +400") {
		t.Errorf("diff output missing the +400 exec delta:\n%s", diff.String())
	}
}

func writeTestBench(t *testing.T, path string, simCycles int64) {
	t.Helper()
	r := &bench.Report{
		Schema: bench.SchemaV1,
		Stamp:  "t",
		Procs:  8,
		Size:   "test",
		Benchmarks: []bench.Measurement{
			{Name: "fig2/fft", Points: 2, WallNS: 1e6, SimCycles: simCycles,
				Handoffs: 100, Refs: 2000, Allocs: 5000, AllocBytes: 1 << 20},
		},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bench.WriteReport(f, r); err != nil {
		t.Fatal(err)
	}
}

// `tracetool bench one.json` renders the table; with two inputs it
// renders the regression diff and errs iff a deterministic counter
// drifted.
func TestBenchRenderAndDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeTestBench(t, a, 40000)
	writeTestBench(t, b, 40007)

	var table bytes.Buffer
	if err := run([]string{"bench", a}, &table); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2/fft", "simcycles", "40000"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}

	var clean bytes.Buffer
	if err := run([]string{"bench", a, a}, &clean); err != nil {
		t.Fatalf("self-diff errored: %v", err)
	}
	if !strings.Contains(clean.String(), "no regressions") {
		t.Errorf("self-diff missing verdict:\n%s", clean.String())
	}

	var diff bytes.Buffer
	err := run([]string{"bench", a, b}, &diff)
	if err == nil {
		t.Fatal("drifted simcycles diff succeeded, want error")
	}
	if !strings.Contains(diff.String(), "simCycles") {
		t.Errorf("diff does not name the drifted counter:\n%s", diff.String())
	}
}

func writeTestEvents(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := obs.NewLog(f, "test-run")
	at := time.Unix(100, 0)
	l.SetClock(func() time.Time { at = at.Add(time.Second); return at })
	l.Emit(obs.Event{Kind: obs.EventSweepStart})
	l.Emit(obs.Event{Kind: obs.EventPointStart, Span: obs.SpanBegin, Point: "fft-c4-inf", App: "fft", Cluster: 4, Cache: "inf"})
	l.Emit(obs.Event{Kind: obs.EventPointDone, Span: obs.SpanEnd, Point: "fft-c4-inf", App: "fft", Cluster: 4, Cache: "inf",
		VirtCycles: 12345, DurNS: int64(2 * time.Second)})
	l.Emit(obs.Event{Kind: obs.EventPointReplay, Point: "lu-c1-inf", App: "lu", Cluster: 1, Cache: "inf", VirtCycles: 99})
	l.Emit(obs.Event{Kind: obs.EventSweepDone, Detail: "1 points computed, 1 replayed from journal, 0 failed"})
}

// `tracetool events log.jsonl` renders every event; -point and -kind
// narrow the rows.
func TestEventsRenderAndFilter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	writeTestEvents(t, path)

	var all bytes.Buffer
	if err := run([]string{"events", path}, &all); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sweep-start", "fft-c4-inf", "12345 cycles", "point-replay", "sweep-done"} {
		if !strings.Contains(all.String(), want) {
			t.Errorf("output missing %q:\n%s", want, all.String())
		}
	}

	var filtered bytes.Buffer
	if err := run([]string{"events", "-point", "lu-c1-inf", path}, &filtered); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(filtered.String(), "fft-c4-inf") || !strings.Contains(filtered.String(), "lu-c1-inf") {
		t.Errorf("-point filter leaked other points:\n%s", filtered.String())
	}

	var kinds bytes.Buffer
	if err := run([]string{"events", "-kind", "point-done", path}, &kinds); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(kinds.String(), "sweep-start") || !strings.Contains(kinds.String(), "point-done") {
		t.Errorf("-kind filter leaked other kinds:\n%s", kinds.String())
	}
}

// An events file from a different (or future) schema is rejected, not
// half-rendered.
func TestEventsRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	if err := os.WriteFile(path, []byte(`{"schema":"clustersim/events/v99","seq":1,"kind":"x"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"events", path}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "v99") {
		t.Errorf("unknown schema error = %v, want it to name the schema", err)
	}
}

// `tracetool metrics` accepts a real registry render and rejects a
// truncated one.
func TestMetricsValidatesExposition(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo_total", "A demo counter.", obs.L("kind", "x")).Add(3)
	reg.Gauge("demo_gauge", "A demo gauge.").Set(1.5)
	reg.Histogram("demo_seconds", "A demo histogram.", []float64{1, 10}).Observe(4)
	var expo bytes.Buffer
	reg.WritePrometheus(&expo)

	dir := t.TempDir()
	good := filepath.Join(dir, "good.prom")
	if err := os.WriteFile(good, expo.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"metrics", good}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 metric families") {
		t.Errorf("verdict missing family count:\n%s", out.String())
	}

	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("# TYPE demo_total counter\ndemo_total not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"metrics", bad}, &bytes.Buffer{}); err == nil {
		t.Error("malformed exposition accepted")
	}
}
